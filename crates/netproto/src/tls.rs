//! A simulated TLS 1.2-style protocol: two-round-trip handshake with a
//! plaintext SNI (which the GFW's DPI reads — SNI filtering is one of its
//! techniques), Diffie–Hellman key agreement, transcript-bound Finished
//! MACs, and an encrypted record layer (AES-256-CTR + HMAC).
//!
//! The record framing is faithful enough that DPI can fingerprint it:
//! record type byte, version bytes, length, then ciphertext.

use sc_crypto::aes::{Aes, KeySize};
use sc_crypto::dh::{PrivateKey, PublicKey};
use sc_crypto::hmac::{ct_eq, hkdf, hmac_sha256};
use sc_crypto::modes::Ctr;
use sc_crypto::sha256::Sha256;

/// TLS record content types (matching real TLS).
pub mod record_type {
    /// Handshake messages.
    pub const HANDSHAKE: u8 = 22;
    /// Application data.
    pub const APPLICATION_DATA: u8 = 23;
    /// Alerts.
    pub const ALERT: u8 = 21;
}

/// The record-layer version bytes (TLS 1.2 = 0x0303).
pub const VERSION: [u8; 2] = [0x03, 0x03];

/// Handshake message types.
mod hs_type {
    pub const CLIENT_HELLO: u8 = 1;
    pub const SERVER_HELLO: u8 = 2;
    pub const CLIENT_KEY_EXCHANGE: u8 = 16;
    pub const FINISHED: u8 = 20;
}

/// Errors from the TLS state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A record was malformed.
    BadRecord,
    /// A handshake message arrived out of order or malformed.
    BadHandshake(&'static str),
    /// The Finished MAC did not verify.
    BadFinished,
    /// Record MAC failed (tampering or key mismatch).
    BadRecordMac,
}

impl core::fmt::Display for TlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlsError::BadRecord => write!(f, "malformed TLS record"),
            TlsError::BadHandshake(w) => write!(f, "bad TLS handshake: {w}"),
            TlsError::BadFinished => write!(f, "TLS finished verification failed"),
            TlsError::BadRecordMac => write!(f, "TLS record MAC failed"),
        }
    }
}

impl std::error::Error for TlsError {}

/// Output of feeding bytes into a TLS endpoint.
#[derive(Debug, Default)]
pub struct TlsOutput {
    /// Bytes to transmit to the peer.
    pub wire: Vec<u8>,
    /// Decrypted application data received.
    pub plaintext: Vec<u8>,
    /// True once the handshake completed (edge-triggered: set on the call
    /// that completes it).
    pub handshake_complete: bool,
}

fn frame_record(rtype: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 7);
    out.push(rtype);
    out.extend_from_slice(&VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental record deframer.
#[derive(Debug, Default)]
struct RecordBuf {
    buf: Vec<u8>,
}

impl RecordBuf {
    fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    fn next_record(&mut self) -> Result<Option<(u8, Vec<u8>)>, TlsError> {
        if self.buf.len() < 7 {
            return Ok(None);
        }
        if self.buf[1..3] != VERSION {
            return Err(TlsError::BadRecord);
        }
        let len = u32::from_be_bytes(self.buf[3..7].try_into().unwrap()) as usize;
        if self.buf.len() < 7 + len {
            return Ok(None);
        }
        let rtype = self.buf[0];
        let payload = self.buf[7..7 + len].to_vec();
        self.buf.drain(..7 + len);
        Ok(Some((rtype, payload)))
    }
}

/// Session keys derived from the handshake.
#[derive(Debug)]
struct SessionKeys {
    client_write: Ctr,
    server_write: Ctr,
    client_mac: [u8; 32],
    server_mac: [u8; 32],
}

fn derive_keys(shared: &[u8; 32], client_random: &[u8; 32], server_random: &[u8; 32]) -> SessionKeys {
    let mut salt = Vec::with_capacity(64);
    salt.extend_from_slice(client_random);
    salt.extend_from_slice(server_random);
    let okm = hkdf(&salt, shared, b"sc-tls key expansion", 32 + 32 + 32 + 32 + 16 + 16);
    let cw = Aes::new(KeySize::Aes256, &okm[0..32]).expect("fixed-size key");
    let sw = Aes::new(KeySize::Aes256, &okm[32..64]).expect("fixed-size key");
    let mut cnonce = [0u8; 16];
    cnonce.copy_from_slice(&okm[128..144]);
    let mut snonce = [0u8; 16];
    snonce.copy_from_slice(&okm[144..160]);
    SessionKeys {
        client_write: Ctr::new(cw, cnonce),
        server_write: Ctr::new(sw, snonce),
        client_mac: okm[64..96].try_into().unwrap(),
        server_mac: okm[96..128].try_into().unwrap(),
    }
}

/// Encrypt-then-MAC application record body: ciphertext || HMAC-tag(8).
fn seal(ctr: &mut Ctr, mac_key: &[u8; 32], plaintext: &[u8]) -> Vec<u8> {
    let mut ct = plaintext.to_vec();
    ctr.apply(&mut ct);
    let tag = hmac_sha256(mac_key, &ct);
    let mut out = ct;
    out.extend_from_slice(&tag[..8]);
    out
}

fn open(ctr: &mut Ctr, mac_key: &[u8; 32], body: &[u8]) -> Result<Vec<u8>, TlsError> {
    if body.len() < 8 {
        return Err(TlsError::BadRecordMac);
    }
    let (ct, tag) = body.split_at(body.len() - 8);
    let expect = hmac_sha256(mac_key, ct);
    if !ct_eq(&expect[..8], tag) {
        return Err(TlsError::BadRecordMac);
    }
    let mut pt = ct.to_vec();
    ctr.apply(&mut pt);
    Ok(pt)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    AwaitServerHello,
    AwaitFinished,
    Connected,
}

/// Client side of the simulated TLS protocol.
#[derive(Debug)]
pub struct TlsClient {
    state: ClientState,
    server_name: String,
    records: RecordBuf,
    transcript: Sha256,
    client_random: [u8; 32],
    dh: PrivateKey,
    keys: Option<SessionKeys>,
    shared: Option<[u8; 32]>,
    server_random: Option<[u8; 32]>,
}

impl TlsClient {
    /// Creates a client that will present `server_name` in its plaintext
    /// SNI. `entropy` seeds randoms and the DH key deterministically.
    pub fn new(server_name: &str, entropy: u64) -> Self {
        let mut client_random = [0u8; 32];
        let seed = sc_crypto::sha256(&[&entropy.to_be_bytes()[..], b"client-random"].concat());
        client_random.copy_from_slice(&seed);
        TlsClient {
            state: ClientState::Start,
            server_name: server_name.to_string(),
            records: RecordBuf::default(),
            transcript: Sha256::new(),
            client_random,
            dh: PrivateKey::from_entropy(entropy ^ 0x5a5a_5a5a_5a5a_5a5a),
            keys: None,
            shared: None,
            server_random: None,
        }
    }

    /// Produces the ClientHello. Call exactly once, first.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start_handshake(&mut self) -> Vec<u8> {
        assert_eq!(self.state, ClientState::Start, "start_handshake called twice");
        // ClientHello: type | random(32) | sni_len(2) | sni
        let mut hello = vec![hs_type::CLIENT_HELLO];
        hello.extend_from_slice(&self.client_random);
        let sni = self.server_name.as_bytes();
        hello.extend_from_slice(&(sni.len() as u16).to_be_bytes());
        hello.extend_from_slice(sni);
        self.transcript.update(&hello);
        self.state = ClientState::AwaitServerHello;
        frame_record(record_type::HANDSHAKE, &hello)
    }

    /// Encrypts application data for the wire.
    ///
    /// # Panics
    ///
    /// Panics if the handshake has not completed.
    pub fn send(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let keys = self.keys.as_mut().expect("TLS handshake not complete");
        let body = seal(&mut keys.client_write, &keys.client_mac, plaintext);
        frame_record(record_type::APPLICATION_DATA, &body)
    }

    /// Feeds bytes received from the peer.
    ///
    /// # Errors
    ///
    /// Returns a [`TlsError`] on protocol violations.
    pub fn on_bytes(&mut self, data: &[u8]) -> Result<TlsOutput, TlsError> {
        self.records.push(data);
        let mut out = TlsOutput::default();
        while let Some((rtype, payload)) = self.records.next_record()? {
            match (rtype, self.state) {
                (t, ClientState::AwaitServerHello) if t == record_type::HANDSHAKE => {
                    if payload.first() != Some(&hs_type::SERVER_HELLO) || payload.len() < 1 + 32 + 8 {
                        return Err(TlsError::BadHandshake("server hello"));
                    }
                    let mut server_random = [0u8; 32];
                    server_random.copy_from_slice(&payload[1..33]);
                    let server_pub = PublicKey::from_bytes(payload[33..41].try_into().unwrap())
                        .map_err(|_| TlsError::BadHandshake("server dh key"))?;
                    self.transcript.update(&payload);
                    let shared = self.dh.agree(&server_pub);
                    self.server_random = Some(server_random);
                    self.shared = Some(shared);

                    // ClientKeyExchange: type | dh_pub(8)
                    let mut cke = vec![hs_type::CLIENT_KEY_EXCHANGE];
                    cke.extend_from_slice(&self.dh.public_key().to_bytes());
                    self.transcript.update(&cke);
                    out.wire.extend(frame_record(record_type::HANDSHAKE, &cke));

                    // Client Finished: HMAC(shared, transcript || "client")
                    let th = self.transcript.clone().finalize();
                    let mut fin = vec![hs_type::FINISHED];
                    fin.extend_from_slice(&hmac_sha256(&shared, &[&th[..], b"client"].concat()));
                    self.transcript.update(&fin);
                    out.wire.extend(frame_record(record_type::HANDSHAKE, &fin));
                    self.state = ClientState::AwaitFinished;
                }
                (t, ClientState::AwaitFinished) if t == record_type::HANDSHAKE => {
                    if payload.first() != Some(&hs_type::FINISHED) {
                        return Err(TlsError::BadHandshake("expected finished"));
                    }
                    let shared = self.shared.expect("set with server hello");
                    let th = self.transcript.clone().finalize();
                    let expect = hmac_sha256(&shared, &[&th[..], b"server"].concat());
                    if !ct_eq(&expect, &payload[1..]) {
                        return Err(TlsError::BadFinished);
                    }
                    self.keys = Some(derive_keys(
                        &shared,
                        &self.client_random,
                        &self.server_random.expect("set with server hello"),
                    ));
                    self.state = ClientState::Connected;
                    out.handshake_complete = true;
                }
                (t, ClientState::Connected) if t == record_type::APPLICATION_DATA => {
                    let keys = self.keys.as_mut().expect("connected implies keys");
                    out.plaintext
                        .extend(open(&mut keys.server_write, &keys.server_mac, &payload)?);
                }
                _ => return Err(TlsError::BadHandshake("unexpected record")),
            }
        }
        Ok(out)
    }

    /// Whether application data can flow.
    pub fn is_connected(&self) -> bool {
        self.state == ClientState::Connected
    }

    /// The SNI this client presents.
    pub fn server_name(&self) -> &str {
        &self.server_name
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    AwaitClientHello,
    AwaitKeyExchange,
    AwaitFinished,
    Connected,
}

/// Server side of the simulated TLS protocol.
#[derive(Debug)]
pub struct TlsServer {
    state: ServerState,
    records: RecordBuf,
    transcript: Sha256,
    server_random: [u8; 32],
    dh: PrivateKey,
    keys: Option<SessionKeys>,
    shared: Option<[u8; 32]>,
    client_random: Option<[u8; 32]>,
    sni: Option<String>,
}

impl TlsServer {
    /// Creates a server endpoint with deterministic entropy.
    pub fn new(entropy: u64) -> Self {
        let mut server_random = [0u8; 32];
        let seed = sc_crypto::sha256(&[&entropy.to_be_bytes()[..], b"server-random"].concat());
        server_random.copy_from_slice(&seed);
        TlsServer {
            state: ServerState::AwaitClientHello,
            records: RecordBuf::default(),
            transcript: Sha256::new(),
            server_random,
            dh: PrivateKey::from_entropy(entropy ^ 0xa5a5_a5a5_a5a5_a5a5),
            keys: None,
            shared: None,
            client_random: None,
            sni: None,
        }
    }

    /// The SNI the client presented (after the ClientHello).
    pub fn sni(&self) -> Option<&str> {
        self.sni.as_deref()
    }

    /// Whether application data can flow.
    pub fn is_connected(&self) -> bool {
        self.state == ServerState::Connected
    }

    /// Encrypts application data for the wire.
    ///
    /// # Panics
    ///
    /// Panics if the handshake has not completed.
    pub fn send(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let keys = self.keys.as_mut().expect("TLS handshake not complete");
        let body = seal(&mut keys.server_write, &keys.server_mac, plaintext);
        frame_record(record_type::APPLICATION_DATA, &body)
    }

    /// Feeds bytes received from the peer.
    ///
    /// # Errors
    ///
    /// Returns a [`TlsError`] on protocol violations.
    pub fn on_bytes(&mut self, data: &[u8]) -> Result<TlsOutput, TlsError> {
        self.records.push(data);
        let mut out = TlsOutput::default();
        while let Some((rtype, payload)) = self.records.next_record()? {
            match (rtype, self.state) {
                (t, ServerState::AwaitClientHello) if t == record_type::HANDSHAKE => {
                    if payload.first() != Some(&hs_type::CLIENT_HELLO) || payload.len() < 35 {
                        return Err(TlsError::BadHandshake("client hello"));
                    }
                    let mut client_random = [0u8; 32];
                    client_random.copy_from_slice(&payload[1..33]);
                    let sni_len = u16::from_be_bytes(payload[33..35].try_into().unwrap()) as usize;
                    if payload.len() != 35 + sni_len {
                        return Err(TlsError::BadHandshake("client hello sni"));
                    }
                    self.sni = Some(String::from_utf8_lossy(&payload[35..]).to_string());
                    self.client_random = Some(client_random);
                    self.transcript.update(&payload);

                    // ServerHello: type | random(32) | dh_pub(8)
                    let mut hello = vec![hs_type::SERVER_HELLO];
                    hello.extend_from_slice(&self.server_random);
                    hello.extend_from_slice(&self.dh.public_key().to_bytes());
                    self.transcript.update(&hello);
                    out.wire.extend(frame_record(record_type::HANDSHAKE, &hello));
                    self.state = ServerState::AwaitKeyExchange;
                }
                (t, ServerState::AwaitKeyExchange) if t == record_type::HANDSHAKE => {
                    if payload.first() != Some(&hs_type::CLIENT_KEY_EXCHANGE) || payload.len() != 9 {
                        return Err(TlsError::BadHandshake("key exchange"));
                    }
                    let client_pub = PublicKey::from_bytes(payload[1..9].try_into().unwrap())
                        .map_err(|_| TlsError::BadHandshake("client dh key"))?;
                    self.transcript.update(&payload);
                    self.shared = Some(self.dh.agree(&client_pub));
                    self.state = ServerState::AwaitFinished;
                }
                (t, ServerState::AwaitFinished) if t == record_type::HANDSHAKE => {
                    if payload.first() != Some(&hs_type::FINISHED) {
                        return Err(TlsError::BadHandshake("expected finished"));
                    }
                    let shared = self.shared.expect("set at key exchange");
                    let th = self.transcript.clone().finalize();
                    let expect = hmac_sha256(&shared, &[&th[..], b"client"].concat());
                    if !ct_eq(&expect, &payload[1..]) {
                        return Err(TlsError::BadFinished);
                    }
                    self.transcript.update(&payload);
                    // Server Finished.
                    let th2 = self.transcript.clone().finalize();
                    let mut fin = vec![hs_type::FINISHED];
                    fin.extend_from_slice(&hmac_sha256(&shared, &[&th2[..], b"server"].concat()));
                    out.wire.extend(frame_record(record_type::HANDSHAKE, &fin));
                    self.keys = Some(derive_keys(
                        &shared,
                        &self.client_random.expect("set at client hello"),
                        &self.server_random,
                    ));
                    self.state = ServerState::Connected;
                    out.handshake_complete = true;
                }
                (t, ServerState::Connected) if t == record_type::APPLICATION_DATA => {
                    let keys = self.keys.as_mut().expect("connected implies keys");
                    out.plaintext
                        .extend(open(&mut keys.client_write, &keys.client_mac, &payload)?);
                }
                _ => return Err(TlsError::BadHandshake("unexpected record")),
            }
        }
        Ok(out)
    }
}

/// Extracts the SNI from raw bytes if they begin with a ClientHello —
/// the exact operation the GFW's SNI filter performs on passing traffic.
pub fn sniff_sni(data: &[u8]) -> Option<String> {
    // record header (7) + type(1) + random(32) + sni_len(2)
    if data.len() < 7 + 35 || data[0] != record_type::HANDSHAKE || data[1..3] != VERSION {
        return None;
    }
    let payload = &data[7..];
    if payload.first() != Some(&hs_type::CLIENT_HELLO) {
        return None;
    }
    let sni_len = u16::from_be_bytes(payload[33..35].try_into().ok()?) as usize;
    if payload.len() < 35 + sni_len {
        return None;
    }
    Some(String::from_utf8_lossy(&payload[35..35 + sni_len]).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake() -> (TlsClient, TlsServer) {
        let mut client = TlsClient::new("scholar.google.com", 1);
        let mut server = TlsServer::new(2);
        let ch = client.start_handshake();
        let s1 = server.on_bytes(&ch).unwrap();
        let c1 = client.on_bytes(&s1.wire).unwrap();
        let s2 = server.on_bytes(&c1.wire).unwrap();
        assert!(s2.handshake_complete);
        let c2 = client.on_bytes(&s2.wire).unwrap();
        assert!(c2.handshake_complete);
        (client, server)
    }

    #[test]
    fn full_handshake_and_data() {
        let (mut client, mut server) = handshake();
        assert!(client.is_connected() && server.is_connected());
        assert_eq!(server.sni(), Some("scholar.google.com"));

        let wire = client.send(b"GET / HTTP/1.1\r\n\r\n");
        let got = server.on_bytes(&wire).unwrap();
        assert_eq!(got.plaintext, b"GET / HTTP/1.1\r\n\r\n");

        let wire = server.send(b"HTTP/1.1 200 OK\r\n\r\n");
        let got = client.on_bytes(&wire).unwrap();
        assert_eq!(got.plaintext, b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn multiple_records_roundtrip() {
        let (mut client, mut server) = handshake();
        let mut wire = Vec::new();
        for i in 0..10u8 {
            wire.extend(client.send(&[i; 100]));
        }
        // Feed in odd-sized fragments.
        let mut plain = Vec::new();
        for chunk in wire.chunks(37) {
            plain.extend(server.on_bytes(chunk).unwrap().plaintext);
        }
        assert_eq!(plain.len(), 1000);
    }

    #[test]
    fn ciphertext_is_high_entropy() {
        let (mut client, _server) = handshake();
        let wire = client.send(&vec![b'A'; 4096]);
        let stats = sc_crypto::entropy::PayloadStats::analyze(&wire[7..]);
        assert!(stats.entropy > 7.0, "entropy {}", stats.entropy);
    }

    #[test]
    fn sni_is_sniffable_from_client_hello() {
        let mut client = TlsClient::new("www.google.com", 3);
        let ch = client.start_handshake();
        assert_eq!(sniff_sni(&ch).as_deref(), Some("www.google.com"));
        // Application data must not leak an SNI.
        let (mut c, _s) = handshake();
        assert_eq!(sniff_sni(&c.send(b"data")), None);
        assert_eq!(sniff_sni(b"short"), None);
    }

    #[test]
    fn tampered_record_fails_mac() {
        let (mut client, mut server) = handshake();
        let mut wire = client.send(b"secret");
        let n = wire.len();
        wire[n - 9] ^= 0xff; // flip a ciphertext bit
        assert_eq!(server.on_bytes(&wire).unwrap_err(), TlsError::BadRecordMac);
    }

    #[test]
    fn tampered_finished_fails() {
        let mut client = TlsClient::new("h", 1);
        let mut server = TlsServer::new(2);
        let ch = client.start_handshake();
        let s1 = server.on_bytes(&ch).unwrap();
        let mut c1 = client.on_bytes(&s1.wire).unwrap();
        let n = c1.wire.len();
        c1.wire[n - 1] ^= 1; // corrupt client finished MAC
        assert_eq!(server.on_bytes(&c1.wire).unwrap_err(), TlsError::BadFinished);
    }

    #[test]
    fn wrong_order_is_rejected() {
        let mut server = TlsServer::new(2);
        let (mut client, _s) = handshake();
        let appdata = client.send(b"x");
        assert!(matches!(
            server.on_bytes(&appdata).unwrap_err(),
            TlsError::BadHandshake(_)
        ));
    }

    #[test]
    #[should_panic(expected = "start_handshake called twice")]
    fn double_start_panics() {
        let mut client = TlsClient::new("h", 1);
        let _ = client.start_handshake();
        let _ = client.start_handshake();
    }
}
