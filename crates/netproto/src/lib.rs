//! # sc-netproto
//!
//! Application-layer protocol codecs shared across the ScholarCloud
//! reproduction:
//!
//! * [`http`] — HTTP/1.1 messages + incremental parser (keep-alive,
//!   Content-Length and chunked bodies).
//! * [`tls`] — a simulated TLS 1.2-style protocol with a plaintext SNI
//!   (DPI-readable), DH key agreement, and an encrypted record layer.
//! * [`socks`] — SOCKS5 with RFC 1929 username/password auth, as spoken to
//!   Shadowsocks local proxies; also the Shadowsocks target-address header.
//! * [`pac`] — proxy auto-config generation/evaluation, ScholarCloud's
//!   whole client-side configuration story.
//!
//! These are pure byte-level state machines with no dependency on the
//! simulator loop, so they are unit-testable in isolation and reusable by
//! every app in `sc-tunnels`, `sc-core`, and `sc-web`.

#![warn(missing_docs)]

pub mod http;
pub mod pac;
pub mod socks;
pub mod tls;

pub use http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
pub use pac::{PacFile, ProxyDecision};
pub use socks::{SocksServerSession, TargetAddr};
pub use tls::{TlsClient, TlsServer, sniff_sni};
