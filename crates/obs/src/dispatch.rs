//! The dispatcher: routes events to sinks and hosts the shared
//! [`Registry`].
//!
//! Instrumented code never threads an observability handle through its
//! call graph — deep layers like `sc-simnet`'s TCP engine have no
//! context parameter to hang one on. Instead a [`Dispatcher`] is
//! **installed into a thread-local slot** for the duration of a run
//! (RAII [`ObsGuard`]), and instrumentation calls the free functions
//! ([`emit`], [`counter_add`], [`span_start`], …), which are no-ops
//! when nothing is installed. The simulator is single-threaded and
//! tests run one scenario per thread, so thread-locality also keeps
//! parallel test binaries from interleaving traces — a prerequisite for
//! the byte-identical determinism guarantee.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::event::{Event, Level, SpanId};
use crate::metrics::Registry;
use crate::sink::Sink;
use crate::slo::{SloEngine, SloSpec};
use crate::timeseries::{TimeSeries, WindowSpec};

thread_local! {
    static CURRENT: RefCell<Option<Dispatcher>> = const { RefCell::new(None) };
    /// Mirror of `CURRENT.is_some()`, readable without touching the
    /// `RefCell`: the early-out every free function takes first, so
    /// un-instrumented runs pay one `Cell` read and a branch.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Routes events to sinks, applying per-component level filters, and
/// owns the run's metrics [`Registry`].
pub struct Dispatcher {
    sinks: Vec<Box<dyn Sink>>,
    default_level: Level,
    component_levels: BTreeMap<&'static str, Level>,
    registry: Registry,
    timeseries: TimeSeries,
    slos: SloEngine,
    next_span: u64,
    open_spans: BTreeMap<u64, SpanStart>,
}

struct SpanStart {
    t_us: u64,
    component: &'static str,
    target: &'static str,
    name: &'static str,
}

impl Default for Dispatcher {
    fn default() -> Dispatcher {
        Dispatcher::new()
    }
}

impl Dispatcher {
    /// Creates a dispatcher accepting `Info` and above with no sinks.
    pub fn new() -> Dispatcher {
        Dispatcher {
            sinks: Vec::new(),
            default_level: Level::Info,
            component_levels: BTreeMap::new(),
            registry: Registry::new(),
            timeseries: TimeSeries::default(),
            slos: SloEngine::default(),
            next_span: 0,
            open_spans: BTreeMap::new(),
        }
    }

    /// Sets the minimum level accepted for components without an
    /// explicit override.
    pub fn with_level(mut self, level: Level) -> Dispatcher {
        self.default_level = level;
        self
    }

    /// Overrides the minimum level for one component (e.g. keep
    /// `simnet` at `Info` while tracing `gfw` at `Trace`).
    pub fn with_component_level(mut self, component: &'static str, level: Level) -> Dispatcher {
        self.component_levels.insert(component, level);
        self
    }

    /// Adds a sink; every accepted event is offered to all sinks in
    /// registration order.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Dispatcher {
        self.sinks.push(sink);
        self
    }

    /// Replaces the windowed time-series store with one of the given
    /// geometry (the default is 1-second windows, 512 kept per series).
    pub fn with_windows(mut self, spec: WindowSpec) -> Dispatcher {
        self.timeseries = TimeSeries::new(spec);
        self
    }

    /// Adds one SLO; alerts are evaluated as windows close (see
    /// [`tick`]) and dispatched through the sinks like any other event.
    pub fn with_slo(mut self, spec: SloSpec) -> Dispatcher {
        self.slos.push(spec);
        self
    }

    /// Adds several SLOs.
    pub fn with_slos(mut self, specs: Vec<SloSpec>) -> Dispatcher {
        for spec in specs {
            self.slos.push(spec);
        }
        self
    }

    /// Installs this dispatcher into the thread-local slot, returning a
    /// guard that uninstalls (and flushes sinks into) it on drop. The
    /// previously installed dispatcher, if any, is restored afterwards,
    /// so scopes nest.
    pub fn install(self) -> ObsGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(self));
        ACTIVE.with(|a| a.set(true));
        ObsGuard { prev }
    }

    /// The metrics registry accumulated so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The windowed time-series accumulated so far.
    pub fn timeseries(&self) -> &TimeSeries {
        &self.timeseries
    }

    /// The SLO engine with its current alerting state.
    pub fn slo_engine(&self) -> &SloEngine {
        &self.slos
    }

    /// Consumes the dispatcher, yielding its final registry (typically
    /// after [`ObsGuard::uninstall`]).
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    /// Whether an event at `level` from `component` would reach a sink.
    /// With no sink attached nothing can observe an event, so emission
    /// is disabled outright — the zero-cost guard hot paths rely on to
    /// skip label formatting and field-vector allocation entirely.
    fn enabled(&self, level: Level, component: &str) -> bool {
        if self.sinks.is_empty() {
            return false;
        }
        let min = self
            .component_levels
            .get(component)
            .copied()
            .unwrap_or(self.default_level);
        level >= min
    }

    fn dispatch(&mut self, ev: &Event) {
        for sink in &mut self.sinks {
            sink.record(ev);
        }
    }
}

/// RAII guard from [`Dispatcher::install`]; dropping it flushes sinks
/// and restores the previously installed dispatcher.
pub struct ObsGuard {
    prev: Option<Dispatcher>,
}

impl ObsGuard {
    /// Uninstalls explicitly and hands back the dispatcher (flushed),
    /// giving access to its final [`Registry`].
    pub fn uninstall(mut self) -> Dispatcher {
        let prev = self.prev.take();
        ACTIVE.with(|a| a.set(prev.is_some()));
        let mut d = CURRENT
            .with(|c| std::mem::replace(&mut *c.borrow_mut(), prev))
            .expect("dispatcher slot emptied while guard alive");
        // The restore is done: skip Drop, which would otherwise evict
        // the just-reinstalled previous dispatcher.
        std::mem::forget(self);
        for sink in &mut d.sinks {
            sink.flush();
        }
        d
    }

    /// Snapshot of the installed dispatcher's registry.
    pub fn registry(&self) -> Registry {
        CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .map(|d| d.registry.clone())
                .unwrap_or_default()
        })
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let restored = self.prev.take();
        ACTIVE.with(|a| a.set(restored.is_some()));
        CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(mut d) = std::mem::replace(&mut *slot, restored) {
                for sink in &mut d.sinks {
                    sink.flush();
                }
            }
        });
    }
}

fn with_installed<R>(f: impl FnOnce(&mut Dispatcher) -> R) -> Option<R> {
    if !ACTIVE.with(|a| a.get()) {
        return None;
    }
    CURRENT.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Whether an event at `level` from `component` would be accepted.
/// Hot paths use this to skip building field vectors entirely. Always
/// `false` when no dispatcher is installed **or the installed one has
/// no sinks** — emission is pure cost if nothing can record it.
pub fn is_enabled(level: Level, component: &str) -> bool {
    with_installed(|d| d.enabled(level, component)).unwrap_or(false)
}

/// Whether any dispatcher is installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Sends an event through the installed dispatcher (no-op without one,
/// when no sink is attached, or when filtered out by level).
pub fn emit(ev: Event) {
    with_installed(|d| {
        if d.enabled(ev.level, ev.component) {
            d.dispatch(&ev);
        }
    });
}

/// Opens a span: emits a `span_start` event and returns the id to close
/// it with. Returns [`SpanId::NONE`] (which [`span_end`] ignores) when
/// no dispatcher is installed or the span's level is filtered out.
pub fn span_start(
    t_us: u64,
    level: Level,
    component: &'static str,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, crate::event::Value)>,
) -> SpanId {
    with_installed(|d| {
        if !d.enabled(level, component) {
            return SpanId::NONE;
        }
        d.next_span += 1;
        let id = d.next_span;
        d.open_spans.insert(id, SpanStart { t_us, component, target, name });
        let mut ev = Event::new(t_us, level, component, target, "span_start").in_span(SpanId(id));
        ev.fields.push(("span_name", crate::event::Value::Str(name)));
        ev.fields.extend(fields);
        d.dispatch(&ev);
        SpanId(id)
    })
    .unwrap_or(SpanId::NONE)
}

/// Opens a span *inside a propagated trace*: like [`span_start`], but
/// the emitted `span_start` event additionally carries the trace id and
/// the causing parent span, which is what
/// [`analyze`](crate::analyze) stitches cross-tier request trees from.
///
/// `trace_id`/`parent` ride as ordinary fields (after `span_name`,
/// before the caller's fields) so the JSONL schema is unchanged; a
/// [`TraceCtx::NONE`](crate::TraceCtx::NONE) context degrades to a
/// plain unparented span.
pub fn span_start_ctx(
    t_us: u64,
    level: Level,
    component: &'static str,
    target: &'static str,
    name: &'static str,
    ctx: crate::context::TraceCtx,
    fields: Vec<(&'static str, crate::event::Value)>,
) -> SpanId {
    with_installed(|d| {
        if !d.enabled(level, component) {
            return SpanId::NONE;
        }
        d.next_span += 1;
        let id = d.next_span;
        d.open_spans.insert(id, SpanStart { t_us, component, target, name });
        let mut ev = Event::new(t_us, level, component, target, "span_start").in_span(SpanId(id));
        ev.fields.push(("span_name", crate::event::Value::Str(name)));
        if !ctx.trace.is_none() {
            ev.fields.push(("trace_id", crate::event::Value::U64(ctx.trace.0)));
        }
        if !ctx.parent.is_none() {
            ev.fields.push(("parent", crate::event::Value::U64(ctx.parent.0)));
        }
        ev.fields.extend(fields);
        d.dispatch(&ev);
        SpanId(id)
    })
    .unwrap_or(SpanId::NONE)
}

/// Closes a span opened by [`span_start`], emitting a `span_end` event
/// carrying the span's simulated duration in `dur_us`.
pub fn span_end(t_us: u64, span: SpanId, fields: Vec<(&'static str, crate::event::Value)>) {
    if span.is_none() {
        return;
    }
    with_installed(|d| {
        let Some(start) = d.open_spans.remove(&span.0) else {
            return;
        };
        let mut ev = Event::new(
            t_us,
            Level::Info,
            start.component,
            start.target,
            "span_end",
        )
        .in_span(span);
        ev.fields.push(("span_name", crate::event::Value::Str(start.name)));
        ev.fields
            .push(("dur_us", crate::event::Value::U64(t_us.saturating_sub(start.t_us))));
        ev.fields.extend(fields);
        d.dispatch(&ev);
    });
}

/// Adds to a named counter in the installed registry (no-op without a
/// dispatcher).
pub fn counter_add(name: &str, by: u64) {
    with_installed(|d| d.registry.counter_add(name, by));
}

/// Sets a named gauge in the installed registry.
pub fn gauge_set(name: &str, v: i64) {
    with_installed(|d| d.registry.gauge_set(name, v));
}

/// Adds (possibly negatively) to a named gauge in the installed
/// registry.
pub fn gauge_add(name: &str, by: i64) {
    with_installed(|d| d.registry.gauge_add(name, by));
}

/// Records a histogram sample in the installed registry.
pub fn observe(name: &str, v: u64) {
    with_installed(|d| d.registry.observe(name, v));
}

/// Records a sample into the named windowed time-series at simulation
/// time `t_us` (no-op without a dispatcher). Pairs with [`observe`]:
/// `observe` feeds the run-wide histogram, `ts_record` the per-window
/// one.
pub fn ts_record(t_us: u64, name: &str, v: u64) {
    with_installed(|d| d.timeseries.record(name, t_us, v));
}

/// Like [`ts_record`], but additionally tags the sample with the trace
/// id of the request it came from, so the window keeps it as an
/// **exemplar** candidate (bounded worst-K per window) that fired SLO
/// alerts can link to as evidence.
pub fn ts_record_ex(t_us: u64, name: &str, v: u64, trace: crate::context::TraceId) {
    with_installed(|d| d.timeseries.record_ex(name, t_us, v, trace.0));
}

/// Adds a counter-style increment to the named windowed time-series at
/// simulation time `t_us` (no-op without a dispatcher).
pub fn ts_bump(t_us: u64, name: &str, by: u64) {
    with_installed(|d| d.timeseries.bump(name, t_us, by));
}

/// Like [`ts_bump`], but tags the increment with the trace id of the
/// contributing request (exemplar candidate for rate-based SLOs, e.g.
/// availability alerts linking to the failed loads that burned budget).
pub fn ts_bump_ex(t_us: u64, name: &str, by: u64, trace: crate::context::TraceId) {
    with_installed(|d| d.timeseries.bump_ex(name, t_us, by, trace.0));
}

/// Advances the observability clock to simulation time `t_us`. The
/// simulator calls this as its clock moves; every time-series window
/// that closes is evaluated against the configured SLOs, and resulting
/// burn-rate alerts are dispatched through the sinks like any other
/// event (component `slo`, target `alert`, names `fire`/`resolve`).
/// No-op without a dispatcher; cheap when no window closed.
pub fn tick(t_us: u64) {
    with_installed(|d| {
        d.timeseries.advance(t_us);
        if d.slos.is_empty() {
            return;
        }
        let alerts = d.slos.evaluate(&d.timeseries);
        for ev in alerts {
            match ev.name {
                "fire" => d.registry.counter_add("slo.alerts_fired", 1),
                _ => d.registry.counter_add("slo.alerts_resolved", 1),
            }
            if d.enabled(ev.level, ev.component) {
                d.dispatch(&ev);
            }
        }
    });
}

/// Runs `f` against the installed registry, returning `None` without a
/// dispatcher. Used by report renderers to snapshot metrics.
pub fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    with_installed(|d| f(&d.registry))
}

/// Runs `f` against the installed windowed time-series, returning
/// `None` without a dispatcher. Used by timeline renderers.
pub fn with_timeseries<R>(f: impl FnOnce(&TimeSeries) -> R) -> Option<R> {
    with_installed(|d| f(&d.timeseries))
}

/// Runs `f` against the installed SLO engine, returning `None` without
/// a dispatcher. Used by verdict-table renderers.
pub fn with_slo_engine<R>(f: impl FnOnce(&SloEngine) -> R) -> Option<R> {
    with_installed(|d| f(&d.slos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn info(t: u64, component: &'static str) -> Event {
        Event::new(t, Level::Info, component, "t", "e")
    }

    #[test]
    fn no_dispatcher_means_noop() {
        assert!(!is_active());
        assert!(!is_enabled(Level::Error, "simnet"));
        emit(info(1, "simnet")); // must not panic
        counter_add("x", 1);
        let id = span_start(0, Level::Info, "simnet", "t", "s", vec![]);
        assert!(id.is_none());
        span_end(5, id, vec![]);
    }

    #[test]
    fn level_filtering_per_component() {
        let ring = RingSink::with_capacity(64);
        let h = ring.handle();
        let guard = Dispatcher::new()
            .with_level(Level::Info)
            .with_component_level("gfw", Level::Trace)
            .with_sink(Box::new(ring))
            .install();
        emit(Event::new(1, Level::Trace, "simnet", "t", "a")); // filtered
        emit(Event::new(2, Level::Trace, "gfw", "t", "b")); // kept (override)
        emit(Event::new(3, Level::Info, "simnet", "t", "c")); // kept
        assert!(is_enabled(Level::Trace, "gfw"));
        assert!(!is_enabled(Level::Trace, "simnet"));
        drop(guard);
        assert_eq!(h.len(), 2);
        assert_eq!(h.events()[0].name, "b");
        assert_eq!(h.events()[1].name, "c");
    }

    #[test]
    fn spans_carry_duration_and_sequential_ids() {
        let ring = RingSink::with_capacity(64);
        let h = ring.handle();
        let guard = Dispatcher::new().with_sink(Box::new(ring)).install();
        let a = span_start(100, Level::Info, "web", "load", "page", vec![]);
        let b = span_start(150, Level::Info, "web", "load", "dns", vec![]);
        span_end(250, b, vec![]);
        span_end(400, a, vec![("ok", crate::event::Value::Bool(true))]);
        drop(guard);
        let evs = h.events();
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        let end_b = &evs[2];
        assert_eq!(end_b.name, "span_end");
        assert_eq!(end_b.get_u64("dur_us"), Some(100));
        let end_a = &evs[3];
        assert_eq!(end_a.get_u64("dur_us"), Some(300));
        assert_eq!(end_a.get("ok"), Some(&crate::event::Value::Bool(true)));
        assert_eq!(end_a.get_str("span_name"), Some("page"));
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer_ring = RingSink::with_capacity(8);
        let oh = outer_ring.handle();
        let outer = Dispatcher::new().with_sink(Box::new(outer_ring)).install();
        emit(info(1, "a"));
        {
            let inner_ring = RingSink::with_capacity(8);
            let ih = inner_ring.handle();
            let inner = Dispatcher::new().with_sink(Box::new(inner_ring)).install();
            emit(info(2, "b"));
            drop(inner);
            assert_eq!(ih.len(), 1);
        }
        emit(info(3, "c"));
        drop(outer);
        assert_eq!(oh.len(), 2);
        assert!(!is_active());
    }

    #[test]
    fn tick_drives_windows_and_slo_alerts_through_sinks() {
        use crate::slo::SloSpec;
        use crate::timeseries::WindowSpec;

        let ring = RingSink::with_capacity(64);
        let h = ring.handle();
        let mut spec = SloSpec::quantile("plt", "web.plt_us", 0.95, 1_000);
        spec.eval_windows = 1;
        spec.budget = 0.5;
        let guard = Dispatcher::new()
            .with_windows(WindowSpec::new(1_000_000, 32))
            .with_slo(spec)
            .with_sink(Box::new(ring))
            .install();

        ts_record(100, "web.plt_us", 50_000); // bad window 0
        tick(500_000); // window still open: nothing closes
        assert_eq!(h.len(), 0);
        tick(1_200_000); // window 0 closes → burn 2.0 → fire
        tick(2_200_000); // window 1 empty → burn 0 → resolve

        let d = guard.uninstall();
        let evs = h.events();
        let names: Vec<&str> = evs.iter().map(|e| e.name).collect();
        assert_eq!(names, ["fire", "resolve"], "{evs:?}");
        assert_eq!(evs[0].component, "slo");
        assert_eq!(evs[0].get_str("slo"), Some("plt"));
        assert_eq!(d.registry().counter("slo.alerts_fired"), 1);
        assert_eq!(d.registry().counter("slo.alerts_resolved"), 1);
        assert_eq!(d.timeseries().window("web.plt_us", 0).unwrap().count(), 1);
        assert!(d.slo_engine().any_fired());
    }

    #[test]
    fn no_sink_disables_emission_but_not_metrics() {
        let guard = Dispatcher::new().with_level(Level::Trace).install();
        assert!(is_active());
        // Emission is pure cost with nothing attached to record it: the
        // enablement guard reports false so call sites skip label
        // formatting, and spans short-circuit to NONE.
        assert!(!is_enabled(Level::Error, "simnet"));
        emit(info(1, "simnet"));
        let id = span_start(0, Level::Info, "web", "load", "page", vec![]);
        assert!(id.is_none());
        span_end(10, id, vec![]);
        // The registry and time-series still accumulate: they are
        // readable without a sink.
        counter_add("pkts", 3);
        ts_bump(100, "pkts", 1);
        let d = guard.uninstall();
        assert_eq!(d.registry().counter("pkts"), 3);
    }

    #[test]
    fn uninstall_restores_previous_dispatcher() {
        let outer_ring = RingSink::with_capacity(8);
        let oh = outer_ring.handle();
        let outer = Dispatcher::new().with_sink(Box::new(outer_ring)).install();
        let inner = Dispatcher::new().with_sink(Box::new(RingSink::with_capacity(8))).install();
        counter_add("inner", 1);
        let d = inner.uninstall();
        assert_eq!(d.registry().counter("inner"), 1);
        // The outer dispatcher must be back in the slot and functional.
        assert!(is_active());
        emit(info(5, "a"));
        drop(outer);
        assert_eq!(oh.len(), 1);
        assert!(!is_active());
    }

    #[test]
    fn ts_free_functions_are_noops_without_dispatcher() {
        assert!(!is_active());
        ts_record(0, "x", 1);
        ts_bump(0, "y", 1);
        tick(1_000_000); // must not panic
        assert!(with_timeseries(|_| ()).is_none());
        assert!(with_slo_engine(|_| ()).is_none());
    }

    #[test]
    fn registry_is_reachable_through_free_functions() {
        let guard = Dispatcher::new().install();
        counter_add("pkts", 2);
        counter_add("pkts", 3);
        gauge_set("depth", 7);
        gauge_add("depth", -2);
        observe("lat", 100);
        let reg = guard.registry();
        assert_eq!(reg.counter("pkts"), 5);
        assert_eq!(reg.gauge("depth"), 5);
        assert_eq!(reg.histogram("lat").unwrap().count(), 1);
        let final_reg = guard.uninstall().into_registry();
        assert_eq!(final_reg.counter("pkts"), 5);
    }
}
