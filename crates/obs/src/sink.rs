//! Event sinks: where dispatched events go.
//!
//! Three sinks cover the workspace's needs:
//!
//! * [`RingSink`] — bounded in-memory buffer for tests and ad-hoc
//!   inspection (read through a cloned [`RingHandle`]);
//! * [`JsonlSink`] — one JSON object per line, hand-serialized with a
//!   fixed field order so traces of the same seeded run are
//!   **byte-identical**;
//! * anything custom implementing [`Sink`].

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::rc::Rc;

use crate::event::{Event, Value};

/// Receives every event that passes the dispatcher's level filter.
///
/// Sinks must not emit events themselves: the dispatcher is borrowed
/// while a sink runs, and re-entrant emission would panic.
pub trait Sink {
    /// Records one event.
    fn record(&mut self, ev: &Event);

    /// Flushes buffered output (called when the dispatcher uninstalls).
    fn flush(&mut self) {}
}

#[derive(Debug, Default)]
struct RingInner {
    cap: usize,
    buf: VecDeque<Event>,
    /// Total events offered, including ones evicted by the cap.
    seen: u64,
}

/// Bounded in-memory collector; the oldest events are evicted once
/// `capacity` is reached.
#[derive(Debug)]
pub struct RingSink {
    inner: Rc<RefCell<RingInner>>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            inner: Rc::new(RefCell::new(RingInner {
                cap: capacity,
                buf: VecDeque::with_capacity(capacity),
                seen: 0,
            })),
        }
    }

    /// A handle that stays readable after the sink moves into a
    /// dispatcher.
    pub fn handle(&self) -> RingHandle {
        RingHandle { inner: Rc::clone(&self.inner) }
    }
}

impl Sink for RingSink {
    fn record(&mut self, ev: &Event) {
        let mut inner = self.inner.borrow_mut();
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(ev.clone());
        inner.seen += 1;
    }
}

/// Shared read access to a [`RingSink`]'s contents.
#[derive(Debug, Clone)]
pub struct RingHandle {
    inner: Rc<RefCell<RingInner>>,
}

impl RingHandle {
    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().buf.iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.borrow().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered over the sink's lifetime, including any the
    /// cap evicted.
    pub fn total_seen(&self) -> u64 {
        self.inner.borrow().seen
    }

    /// Counts buffered events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&Event) -> bool) -> usize {
        self.inner.borrow().buf.iter().filter(|e| pred(e)).count()
    }

    /// Counts buffered events by `(component, name)`.
    pub fn count_named(&self, component: &str, name: &str) -> usize {
        self.count(|e| e.component == component && e.name == name)
    }

    /// Whether any buffered event matches a predicate.
    pub fn any(&self, mut pred: impl FnMut(&Event) -> bool) -> bool {
        self.inner.borrow().buf.iter().any(|e| pred(e))
    }
}

/// Writes one JSON object per event, newline-delimited, with a fixed
/// key order (`t_us`, `level`, `component`, `target`, `event`, `span`,
/// `fields`) so same-seed traces compare byte-for-byte.
pub struct JsonlSink {
    out: Box<dyn Write>,
    line: String,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(out: Box<dyn Write>) -> JsonlSink {
        JsonlSink { out, line: String::with_capacity(256) }
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    pub fn create(path: &str) -> io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(io::BufWriter::new(file))))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, ev: &Event) {
        self.line.clear();
        write_event_json(&mut self.line, ev);
        self.line.push('\n');
        // A full disk mid-trace is not worth aborting a simulation for;
        // drop the line rather than panic.
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Serializes `ev` as a single JSON object into `out`.
pub fn write_event_json(out: &mut String, ev: &Event) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t_us\":{},\"level\":\"{}\",\"component\":\"{}\",\"target\":\"{}\",\"event\":\"{}\"",
        ev.t_us,
        ev.level.as_str(),
        Escaped(ev.component),
        Escaped(ev.target),
        Escaped(ev.name),
    );
    if !ev.span.is_none() {
        let _ = write!(out, ",\"span\":{}", ev.span.0);
    }
    if !ev.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", Escaped(key));
            write_value_json(out, value);
        }
        out.push('}');
    }
    out.push('}');
}

fn write_value_json(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            // JSON has no NaN/Inf; encode them as null.
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", Escaped(s));
        }
        Value::String(s) => {
            let _ = write!(out, "\"{}\"", Escaped(s));
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Display adaptor applying JSON string escaping.
struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => std::fmt::Write::write_char(f, c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Level, SpanId};

    fn ev(t: u64, name: &'static str) -> Event {
        Event::new(t, Level::Info, "simnet", "packet", name)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_all() {
        let sink = RingSink::with_capacity(3);
        let h = sink.handle();
        let mut s = sink;
        for t in 0..5 {
            s.record(&ev(t, "send"));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.total_seen(), 5);
        assert_eq!(h.events()[0].t_us, 2);
        assert_eq!(h.count_named("simnet", "send"), 3);
        assert!(h.any(|e| e.t_us == 4));
        assert!(!h.any(|e| e.t_us == 1));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let e = Event::new(17, Level::Warn, "gfw", "verdict", "drop")
            .field("rule", "gfw-\"sni\"")
            .field("bytes", 1500u64)
            .field("ratio", 0.5f64)
            .field("ok", false)
            .in_span(SpanId(3));
        let mut s = String::new();
        write_event_json(&mut s, &e);
        assert_eq!(
            s,
            "{\"t_us\":17,\"level\":\"warn\",\"component\":\"gfw\",\"target\":\"verdict\",\
             \"event\":\"drop\",\"span\":3,\"fields\":{\"rule\":\"gfw-\\\"sni\\\"\",\
             \"bytes\":1500,\"ratio\":0.5,\"ok\":false}}"
        );
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Box::new(Shared(Rc::clone(&buf))));
        sink.record(&ev(1, "send"));
        sink.record(&ev(2, "deliver"));
        sink.flush();
        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn control_chars_escape_to_unicode() {
        let mut s = String::new();
        write_value_json(&mut s, &Value::String("a\u{1}b\nc".to_string()));
        assert_eq!(s, "\"a\\u0001b\\nc\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_value_json(&mut s, &Value::F64(f64::NAN));
        assert_eq!(s, "null");
    }

    #[test]
    fn hostile_labels_stay_valid_json() {
        // Hostnames from the wire can carry anything: quotes, the full
        // C0 control range, backslashes, non-ASCII (IDNs). Every one of
        // these must come out as RFC 8259-valid JSON on a single line.
        let mut hostile = String::from("\"\\\u{7f}");
        for c in 0u32..0x20 {
            hostile.push(char::from_u32(c).unwrap());
        }
        hostile.push_str("例子.测试 – ∅");
        let e = Event::new(1, Level::Info, "web", "load", "start")
            .field("host", hostile.clone())
            .field("note", "tab\there");
        let mut s = String::new();
        write_event_json(&mut s, &e);
        // One physical line: every raw control char was escaped.
        assert_eq!(s.lines().count(), 1);
        assert!(!s.bytes().any(|b| b < 0x20), "raw control byte leaked: {s:?}");
        // The analyzer's strict parser accepts it and round-trips the
        // value exactly — which also proves quotes and backslashes were
        // escaped (an unescaped one would break the object structure).
        let parsed = crate::analyze::parse_line(&s).unwrap();
        assert_eq!(parsed.get_str("host"), Some(hostile.as_str()));
        assert_eq!(parsed.get_str("note"), Some("tab\there"));
    }

    #[test]
    fn named_escapes_and_del_byte_round_trip() {
        let mut s = String::new();
        write_value_json(&mut s, &Value::String("\n\r\t\u{8}\u{c}\u{7f}".to_string()));
        // \b and \f have no named escape in our writer; they are C0
        // controls so they take the \uXXXX path. DEL (0x7f) is legal
        // raw in JSON strings and passes through.
        assert_eq!(s, "\"\\n\\r\\t\\u0008\\u000c\u{7f}\"");
    }
}
