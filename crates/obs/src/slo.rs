//! Declarative SLOs evaluated over closed time-series windows, with
//! burn-rate alerting.
//!
//! The paper's ScholarCloud is an *operated service* (§3 deployment,
//! §4.5 scalability): its operators care about objectives like "page
//! loads complete under 6 s at the 95th percentile" and "whitelisted
//! domains stay ≥ 99% available", not raw counters. An [`SloSpec`]
//! states such an objective declaratively; the [`SloEngine`] evaluates
//! every spec each time a simulation-time window closes (driven by the
//! dispatcher's tick, see [`crate::tick`]) and converts violations into
//! **burn rate** — how fast the error budget is being consumed, where
//! 1.0 means "exactly on budget". Crossing [`SloSpec::fire_burn`]
//! raises an alert *event* through the normal sink path (component
//! `slo`, target `alert`, names `fire`/`resolve`), so alerts land in
//! the same JSONL trace as everything else and are byte-deterministic
//! for a seeded run. Hysteresis ([`SloSpec::resolve_burn`]) keeps a
//! flapping series from spamming fire/resolve pairs.

use std::fmt;
use std::fmt::Write as _;

use crate::event::{Event, Level, Value};
use crate::timeseries::TimeSeries;

/// What an SLO asserts about a series.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Quantile `q` of a **sample** series must stay at/below `max_us`
    /// in each window. A window violating it is a "bad window"; burn is
    /// the bad-window fraction over the evaluation range divided by the
    /// budgeted fraction ([`SloSpec::budget`]).
    QuantileBelowUs {
        /// Sample series name (e.g. `web.plt_us`).
        series: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Ceiling in microseconds.
        max_us: u64,
    },
    /// `ok / (ok + err)` over the evaluation range must stay at/above
    /// `target` (both **rate** series). Burn is the observed error rate
    /// divided by the error budget `1 - target`.
    AvailabilityAtLeast {
        /// Rate series counting successes (e.g. `web.loads_ok`).
        ok_series: String,
        /// Rate series counting failures (e.g. `web.loads_failed`).
        err_series: String,
        /// Availability target in `(0, 1)`.
        target: f64,
    },
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::QuantileBelowUs { series, q, max_us } => {
                write!(f, "{series} p{:.0} ≤ {:.1} s", q * 100.0, *max_us as f64 / 1e6)
            }
            Objective::AvailabilityAtLeast { ok_series, err_series, target } => {
                write!(
                    f,
                    "{ok_series}/({ok_series}+{err_series}) ≥ {:.2}%",
                    target * 100.0
                )
            }
        }
    }
}

/// One declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Short name carried on alert events (e.g. `plt-p95`).
    pub name: String,
    /// The objective.
    pub objective: Objective,
    /// Closed windows per sliding evaluation.
    pub eval_windows: usize,
    /// Budgeted bad-window fraction for quantile objectives (the
    /// availability objective derives its budget from `target`).
    pub budget: f64,
    /// Burn rate at/above which the alert fires.
    pub fire_burn: f64,
    /// Burn rate at/below which a firing alert resolves.
    pub resolve_burn: f64,
}

impl SloSpec {
    /// A quantile SLO with operational defaults: evaluated over the
    /// last 6 closed windows, 25% of windows budgeted bad, firing at
    /// burn ≥ 1 and resolving at burn ≤ 0.5.
    pub fn quantile(name: &str, series: &str, q: f64, max_us: u64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: Objective::QuantileBelowUs { series: series.to_string(), q, max_us },
            eval_windows: 6,
            budget: 0.25,
            fire_burn: 1.0,
            resolve_burn: 0.5,
        }
    }

    /// An availability SLO with the same defaults.
    pub fn availability(name: &str, ok_series: &str, err_series: &str, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective: Objective::AvailabilityAtLeast {
                ok_series: ok_series.to_string(),
                err_series: err_series.to_string(),
                target,
            },
            eval_windows: 6,
            budget: 1.0 - target,
            fire_burn: 1.0,
            resolve_burn: 0.5,
        }
    }
}

/// Mutable alerting state of one SLO.
#[derive(Debug, Clone, Default)]
pub struct SloStatus {
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// `fire` transitions so far.
    pub fired: u64,
    /// `resolve` transitions so far.
    pub resolved: u64,
    /// Burn rate at the most recent evaluation.
    pub last_burn: f64,
    /// Worst burn rate seen.
    pub worst_burn: f64,
    /// Windows evaluated.
    pub evaluations: u64,
    /// Exemplar trace ids attached to the most recent `fire`: the worst
    /// requests inside that alert's burn window, worst first (bounded
    /// by [`crate::timeseries::EXEMPLARS_PER_WINDOW`]).
    pub last_exemplars: Vec<u64>,
}

/// Evaluates a set of [`SloSpec`]s over a [`TimeSeries`] as windows
/// close, producing alert events.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    status: Vec<SloStatus>,
    /// First window index not yet evaluated.
    next_window: u64,
}

impl SloEngine {
    /// Creates an engine over `specs`.
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        let status = specs.iter().map(|_| SloStatus::default()).collect();
        SloEngine { specs, status, next_window: 0 }
    }

    /// Adds one spec.
    pub fn push(&mut self, spec: SloSpec) {
        self.specs.push(spec);
        self.status.push(SloStatus::default());
    }

    /// Whether no SLOs are configured.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Current per-spec status, parallel to [`SloEngine::specs`].
    pub fn statuses(&self) -> &[SloStatus] {
        &self.status
    }

    /// Whether any alert fired at least once.
    pub fn any_fired(&self) -> bool {
        self.status.iter().any(|s| s.fired > 0)
    }

    /// Total `fire` transitions across all SLOs.
    pub fn total_fired(&self) -> u64 {
        self.status.iter().map(|s| s.fired).sum()
    }

    /// Evaluates every window that has closed since the last call,
    /// returning the alert events (timestamped at each window's closing
    /// edge) to dispatch through the sink path.
    pub fn evaluate(&mut self, ts: &TimeSeries) -> Vec<Event> {
        let mut alerts = Vec::new();
        if self.specs.is_empty() {
            self.next_window = ts.closed_through();
            return alerts;
        }
        let closed = ts.closed_through();
        let width = ts.spec().width_us;
        while self.next_window < closed {
            let w = self.next_window;
            self.next_window += 1;
            let t_edge = (w + 1) * width;
            for i in 0..self.specs.len() {
                let burn = burn_at(&self.specs[i], ts, w);
                let st = &mut self.status[i];
                st.last_burn = burn;
                st.worst_burn = st.worst_burn.max(burn);
                st.evaluations += 1;
                if !st.firing && burn >= self.specs[i].fire_burn {
                    st.firing = true;
                    st.fired += 1;
                    // Link the alert to evidence: the worst exemplar
                    // trace ids inside this evaluation's burn window.
                    let exemplars = exemplars_at(&self.specs[i], ts, w);
                    st.last_exemplars = exemplars.clone();
                    alerts.push(alert_event(&self.specs[i], t_edge, w, burn, true, &exemplars));
                } else if st.firing && burn <= self.specs[i].resolve_burn {
                    st.firing = false;
                    st.resolved += 1;
                    alerts.push(alert_event(&self.specs[i], t_edge, w, burn, false, &[]));
                }
            }
        }
        alerts
    }

    /// Renders the per-SLO verdict table: objective, final state, worst
    /// burn, and alert counts. Deterministic for a given engine state.
    pub fn verdict_table(&self) -> String {
        let mut out = String::new();
        out.push_str("SLO verdicts:\n");
        if self.specs.is_empty() {
            out.push_str("  (none configured)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<14} {:<40} {:<9} {:>10} {:>6} {:>9}",
            "slo", "objective", "state", "worst burn", "fired", "resolved"
        );
        for (spec, st) in self.specs.iter().zip(&self.status) {
            let state = if st.firing {
                "FIRING"
            } else if st.fired > 0 {
                "recovered"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:<14} {:<40} {:<9} {:>10.2} {:>6} {:>9}",
                spec.name,
                spec.objective.to_string(),
                state,
                st.worst_burn,
                st.fired,
                st.resolved,
            );
        }
        out
    }
}

/// Burn rate of `spec` for the evaluation range ending at (and
/// including) closed window `w`.
fn burn_at(spec: &SloSpec, ts: &TimeSeries, w: u64) -> f64 {
    let lo = (w + 1).saturating_sub(spec.eval_windows as u64);
    match &spec.objective {
        Objective::QuantileBelowUs { series, q, max_us } => {
            let mut considered = 0u64;
            let mut bad = 0u64;
            for win in ts.windows(series) {
                if win.index < lo || win.index > w || win.count() == 0 {
                    continue;
                }
                considered += 1;
                if win.quantile(*q) > *max_us {
                    bad += 1;
                }
            }
            if considered == 0 {
                return 0.0;
            }
            let bad_frac = bad as f64 / considered as f64;
            round3(bad_frac / spec.budget.max(f64::EPSILON))
        }
        Objective::AvailabilityAtLeast { ok_series, err_series, target } => {
            let sum = |name: &str| -> u64 {
                ts.windows(name)
                    .filter(|win| win.index >= lo && win.index <= w)
                    .map(|win| win.total())
                    .sum()
            };
            let ok = sum(ok_series);
            let err = sum(err_series);
            if ok + err == 0 {
                return 0.0;
            }
            let err_rate = err as f64 / (ok + err) as f64;
            round3(err_rate / (1.0 - target).max(f64::EPSILON))
        }
    }
}

/// Rounds to 3 decimals so the burn value serializes compactly and
/// deterministically in JSONL traces.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// The worst exemplar trace ids inside `spec`'s evaluation range ending
/// at window `w`: quantile objectives draw from their sample series,
/// availability objectives from the failure series. Bounded by
/// [`EXEMPLARS_PER_WINDOW`](crate::timeseries::EXEMPLARS_PER_WINDOW),
/// worst value first, deduplicated, deterministic (stable sort over
/// window-ordered candidates).
fn exemplars_at(spec: &SloSpec, ts: &TimeSeries, w: u64) -> Vec<u64> {
    let lo = (w + 1).saturating_sub(spec.eval_windows as u64);
    let series = match &spec.objective {
        Objective::QuantileBelowUs { series, .. } => series,
        Objective::AvailabilityAtLeast { err_series, .. } => err_series,
    };
    let mut candidates: Vec<(u64, u64)> = ts
        .windows(series)
        .filter(|win| win.index >= lo && win.index <= w)
        .flat_map(|win| win.exemplars().iter().copied())
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0));
    let mut out = Vec::new();
    for (_, trace) in candidates {
        if !out.contains(&trace) {
            out.push(trace);
        }
        if out.len() >= crate::timeseries::EXEMPLARS_PER_WINDOW {
            break;
        }
    }
    out
}

fn alert_event(
    spec: &SloSpec,
    t_us: u64,
    window: u64,
    burn: f64,
    fire: bool,
    exemplars: &[u64],
) -> Event {
    let (level, name) = if fire { (Level::Warn, "fire") } else { (Level::Info, "resolve") };
    let ev = Event::new(t_us, level, "slo", "alert", name)
        .field("slo", Value::String(spec.name.clone()))
        .field("burn", burn)
        .field("window", window);
    if exemplars.is_empty() {
        return ev;
    }
    let joined = exemplars
        .iter()
        .map(|t| format!("{t:016x}"))
        .collect::<Vec<_>>()
        .join(",");
    ev.field("exemplars", Value::String(joined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::WindowSpec;

    fn ts_1s() -> TimeSeries {
        TimeSeries::new(WindowSpec::new(1_000_000, 64))
    }

    #[test]
    fn quantile_slo_fires_and_resolves_with_hysteresis() {
        let mut ts = ts_1s();
        let mut spec = SloSpec::quantile("plt", "plt_us", 0.95, 1_000);
        spec.eval_windows = 2;
        spec.budget = 0.5; // one bad window of two → burn 1.0 → fire
        let mut eng = SloEngine::new(vec![spec]);

        // Window 0 healthy, windows 1–2 bad, 3–4 healthy again.
        ts.record("plt_us", 100, 500);
        ts.record("plt_us", 1_100_000, 50_000);
        ts.record("plt_us", 2_100_000, 50_000);
        ts.record("plt_us", 3_100_000, 500);
        ts.record("plt_us", 4_100_000, 500);
        ts.advance(5_000_000);

        let alerts = eng.evaluate(&ts);
        let names: Vec<&str> = alerts.iter().map(|e| e.name).collect();
        assert_eq!(names, ["fire", "resolve"], "{alerts:?}");
        assert_eq!(alerts[0].get_str("slo"), Some("plt"));
        // Fired when window 1 closed (edge at 2 s).
        assert_eq!(alerts[0].t_us, 2_000_000);
        // Resolved when window 4 closed (both eval windows healthy).
        assert_eq!(alerts[1].t_us, 5_000_000);
        assert!(!eng.statuses()[0].firing);
        assert_eq!(eng.statuses()[0].fired, 1);
        assert!(eng.any_fired());
    }

    #[test]
    fn availability_slo_burn_is_error_rate_over_budget() {
        let mut ts = ts_1s();
        let mut spec = SloSpec::availability("avail", "ok", "err", 0.99);
        spec.eval_windows = 1;
        let mut eng = SloEngine::new(vec![spec]);
        // 95% availability against a 99% target: burn = 5% / 1% = 5.
        ts.bump("ok", 100, 95);
        ts.bump("err", 100, 5);
        ts.advance(1_000_000);
        let alerts = eng.evaluate(&ts);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].name, "fire");
        assert_eq!(eng.statuses()[0].last_burn, 5.0);
    }

    #[test]
    fn empty_windows_do_not_alert() {
        let ts = {
            let mut t = ts_1s();
            t.advance(10_000_000);
            t
        };
        let mut eng = SloEngine::new(vec![SloSpec::quantile("q", "s", 0.95, 1)]);
        assert!(eng.evaluate(&ts).is_empty());
        assert_eq!(eng.statuses()[0].last_burn, 0.0);
        assert_eq!(eng.statuses()[0].evaluations, 10);
    }

    #[test]
    fn evaluation_is_incremental_across_calls() {
        let mut ts = ts_1s();
        let mut spec = SloSpec::quantile("q", "s", 0.5, 10);
        spec.eval_windows = 1;
        spec.budget = 0.5;
        let mut eng = SloEngine::new(vec![spec]);
        ts.record("s", 100, 100);
        ts.advance(1_000_000);
        let first = eng.evaluate(&ts);
        assert_eq!(first.len(), 1);
        // Re-evaluating with no new closed windows emits nothing.
        assert!(eng.evaluate(&ts).is_empty());
        ts.advance(2_000_000);
        // The bad window leaves the 1-window range: resolve.
        let second = eng.evaluate(&ts);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].name, "resolve");
    }

    #[test]
    fn fired_alerts_carry_worst_exemplars_from_the_burn_window() {
        let mut ts = ts_1s();
        let mut spec = SloSpec::quantile("plt", "plt_us", 0.95, 1_000);
        spec.eval_windows = 2;
        spec.budget = 0.5;
        let mut eng = SloEngine::new(vec![spec]);
        ts.record_ex("plt_us", 100, 500, 0xaaa); // window 0, healthy
        ts.record_ex("plt_us", 1_100_000, 90_000, 0xbbb); // window 1, bad → fire
        ts.record("plt_us", 1_200_000, 80_000); // untraced: never exemplar
        ts.advance(2_000_000);
        let alerts = eng.evaluate(&ts);
        let fire = alerts.iter().find(|e| e.name == "fire").expect("fired");
        let ex = fire.get_str("exemplars").expect("exemplars field");
        // Worst first across the burn window: 0xbbb (90 ms) then 0xaaa.
        assert_eq!(ex, format!("{:016x},{:016x}", 0xbbbu64, 0xaaau64));
        assert_eq!(eng.statuses()[0].last_exemplars, vec![0xbbb, 0xaaa]);
        // Resolves carry no exemplars.
        ts.record("plt_us", 2_100_000, 10);
        ts.record("plt_us", 3_100_000, 10);
        ts.advance(4_000_000);
        let alerts = eng.evaluate(&ts);
        let resolve = alerts.iter().find(|e| e.name == "resolve").expect("resolved");
        assert!(resolve.get("exemplars").is_none());
    }

    #[test]
    fn verdict_table_reflects_state() {
        let mut eng = SloEngine::new(Vec::new());
        assert!(eng.verdict_table().contains("none configured"));
        eng.push(SloSpec::quantile("plt-p95", "web.plt_us", 0.95, 6_000_000));
        let table = eng.verdict_table();
        assert!(table.contains("plt-p95"));
        assert!(table.contains("web.plt_us p95"));
        assert!(table.contains("ok"));
    }
}
