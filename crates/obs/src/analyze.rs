//! Offline trace analytics: parse `SC_TRACE` JSONL files and explain
//! where runs spent their time and when the censor interfered.
//!
//! The JSONL trace a run leaves behind (see [`crate::JsonlSink`]) is
//! the raw material; this module turns it into the three views an
//! operator of the paper's service would start from:
//!
//! 1. **Critical-path decomposition** of `page_load` spans — how much
//!    of each page load went to DNS, TCP connect, tunnel/TLS setup, and
//!    fetching, and how much of the load's wall-clock the instrumented
//!    phases actually cover (the rest is think/queue time);
//! 2. **Per-rule interference timeline** — which GFW rules fired, in
//!    which simulation-time window (motivated by arXiv:1709.08718's
//!    observation that interference *clusters* in time);
//! 3. **Per-component event rates** and windowed `page_load`
//!    percentiles (PTPerf, arXiv:2309.14856, shows transport
//!    comparisons hinge on time-resolved percentiles, not run-wide
//!    aggregates).
//!
//! The parser is hand-rolled (std-only, like everything in `sc-obs`)
//! and accepts exactly the JSON subset [`crate::write_event_json`]
//! emits: one object per line, string/number/bool/null values, one
//! level of `fields` nesting. The `scholar-obs` binary wraps this
//! module as a CLI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value from a trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (e.g. a non-finite float).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Nested object, order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// One trace record, the offline twin of [`crate::Event`] (owned
/// strings instead of `&'static str`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulation time in microseconds.
    pub t_us: u64,
    /// Severity string (`"info"`, …).
    pub level: String,
    /// Emitting component.
    pub component: String,
    /// Subsystem within the component.
    pub target: String,
    /// Event name.
    pub name: String,
    /// Enclosing span id, if any.
    pub span: Option<u64>,
    /// Ordered payload.
    pub fields: Vec<(String, Json)>,
}

impl TraceEvent {
    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Field as string slice.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { b: s.as_bytes(), i: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Json)>, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => Ok(Json::Obj(self.object()?)),
            Some(b'[') => Ok(Json::Arr(self.array()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Vec<Json>, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("utf8"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("truncated escape"));
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("utf8"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs never appear in our traces
                            // (the writer only \u-escapes control chars);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow as str to copy whole UTF-8 sequences.
                    let rest = &self.b[self.i - 1..];
                    let ch_len = utf8_len(c);
                    if ch_len == 1 {
                        out.push(c as char);
                    } else {
                        let s = std::str::from_utf8(&rest[..ch_len.min(rest.len())])
                            .map_err(|_| self.err("utf8"))?;
                        let ch = s.chars().next().ok_or_else(|| self.err("utf8"))?;
                        out.push(ch);
                        self.i += ch_len - 1;
                    }
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a standalone JSON document (object/array nesting, any depth)
/// into a [`Json`] value. This is the generic entry point other tools
/// (e.g. `scholar-bench`'s BENCH_*.json reader) reuse, as opposed to
/// [`parse_line`]'s trace-shaped records.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Parses one JSONL trace line into a [`TraceEvent`].
pub fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser::new(line);
    let obj = p.object()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    let mut t_us = None;
    let mut level = None;
    let mut component = None;
    let mut target = None;
    let mut name = None;
    let mut span = None;
    let mut fields = Vec::new();
    for (k, v) in obj {
        match (k.as_str(), v) {
            ("t_us", v) => t_us = v.as_u64(),
            ("level", Json::Str(s)) => level = Some(s),
            ("component", Json::Str(s)) => component = Some(s),
            ("target", Json::Str(s)) => target = Some(s),
            ("event", Json::Str(s)) => name = Some(s),
            ("span", v) => span = v.as_u64(),
            ("fields", Json::Obj(f)) => fields = f,
            (k, _) => return Err(format!("unexpected key {k:?}")),
        }
    }
    Ok(TraceEvent {
        t_us: t_us.ok_or("missing t_us")?,
        level: level.ok_or("missing level")?,
        component: component.ok_or("missing component")?,
        target: target.ok_or("missing target")?,
        name: name.ok_or("missing event")?,
        span,
        fields,
    })
}

/// Parses a whole JSONL trace; blank lines are skipped, any malformed
/// line is an error carrying its 1-based line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

/// A closed span reconstructed from its `span_start`/`span_end` pair.
#[derive(Debug, Clone)]
pub struct ClosedSpan {
    /// Span id.
    pub id: u64,
    /// Emitting component.
    pub component: String,
    /// Span name (`page_load`, `connect`, …).
    pub name: String,
    /// Start time (µs).
    pub start_us: u64,
    /// End time (µs).
    pub end_us: u64,
    /// `ok` field on the end event, if present.
    pub ok: Option<bool>,
}

impl ClosedSpan {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Per-phase aggregate over all attributed phase spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseAgg {
    /// Phase spans attributed.
    pub spans: u64,
    /// Total phase time (µs), summed (phases on parallel connections
    /// may overlap).
    pub total_us: u64,
}

/// One reconstructed `page_load` with its attributed phases.
#[derive(Debug, Clone)]
pub struct PageLoad {
    /// The load span.
    pub span: ClosedSpan,
    /// Summed attributed phase time by phase name.
    pub phase_us: BTreeMap<String, u64>,
    /// Length of the union of attributed phase intervals (µs): the part
    /// of the load that instrumented phases account for.
    pub covered_us: u64,
}

/// One span inside a stitched per-request trace tree. Unlike
/// [`ClosedSpan`] this keeps the causal links (`parent`) and survives
/// truncation: a span whose `span_end` never made it into the trace is
/// kept with `closed = false` and `end_us` pinned to the end of the
/// trace, so a crash mid-flight still yields an analyzable tree.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Span id.
    pub id: u64,
    /// Emitting component.
    pub component: String,
    /// Span name (`page_load`, `admission`, `relay`, …).
    pub name: String,
    /// Start time (µs).
    pub start_us: u64,
    /// End time (µs); the trace end for unclosed spans.
    pub end_us: u64,
    /// Whether a matching `span_end` was seen.
    pub closed: bool,
    /// `ok` field on the end event, if present.
    pub ok: Option<bool>,
    /// Parent span id carried on the start event, if any.
    pub parent: Option<u64>,
    /// Distance from the tree root (root = 0; orphans re-attach at 1).
    pub depth: u32,
    /// Exclusive time (µs): instants of the root's window where this
    /// span is the deepest covering span. Sums to the root's duration
    /// across the whole tree.
    pub excl_us: u64,
}

impl TraceSpan {
    /// The service tier this span's time is blamed on.
    pub fn tier(&self) -> &'static str {
        span_tier(&self.component, &self.name)
    }
}

/// Maps a span to the service tier its exclusive time is blamed on.
pub fn span_tier(component: &str, name: &str) -> &'static str {
    match name {
        "page_load" | "dns" | "connect" | "tunnel" | "fetch" if component == "web" => "web",
        "admission" => "admission",
        "establish" | "attempt" | "backoff" | "park" => "resilience",
        "tunnel_stream" | "upstream_fetch" | "relay" => "tunnel",
        "cache_lookup" | "coalesce_wait" => "cache",
        "origin" => "origin",
        _ => "other",
    }
}

/// One request's stitched cross-tier span tree, keyed by trace id.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The request's trace id (as minted by the browser).
    pub trace_id: u64,
    /// All spans carrying this trace id, in `(start_us, id)` order.
    pub spans: Vec<TraceSpan>,
    /// Index of the root `page_load` span, if the trace has one.
    pub root: Option<usize>,
    /// Spans whose parent id is absent from the tree (they re-attach
    /// under the root for attribution instead of being dropped).
    pub orphans: usize,
    /// Exclusive time blamed on each tier over the root's window; the
    /// values sum to exactly `plt_us`.
    pub tier_us: BTreeMap<&'static str, u64>,
    /// The root span's duration (µs); 0 without a root.
    pub plt_us: u64,
}

impl TraceTree {
    /// Whether the request ran to completion: a root that closed with
    /// `ok = true`.
    pub fn completed(&self) -> bool {
        self.root
            .map(|i| self.spans[i].closed && self.spans[i].ok == Some(true))
            .unwrap_or(false)
    }

    /// Whether cross-tier stitching worked: at least one span outside
    /// the browser's own (`web`) tier joined the tree.
    pub fn stitched(&self) -> bool {
        self.spans.iter().any(|s| s.tier() != "web")
    }

    /// The tier blamed for the most exclusive time, with its share of
    /// the PLT (`None` without a root).
    pub fn dominant_tier(&self) -> Option<(&'static str, f64)> {
        if self.plt_us == 0 {
            return None;
        }
        self.tier_us
            .iter()
            .max_by_key(|(tier, us)| (**us, **tier))
            .map(|(tier, us)| (*tier, *us as f64 / self.plt_us as f64))
    }
}

/// Aggregate of the domestic proxy's `scholarcloud/admission` events:
/// what the overload-control layer did with incoming tunnel requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionStats {
    /// Requests admitted (directly or after queueing).
    pub admitted: u64,
    /// Requests that went through the pending queue.
    pub queued: u64,
    /// Requests shed with `503` (queue full / deadline hopeless).
    pub shed: u64,
    /// Requests throttled with `429` (per-client fairness).
    pub throttled: u64,
    /// Retries denied by the global retry budget.
    pub retry_denied: u64,
}

impl AdmissionStats {
    /// Requests that reached a terminal admission decision.
    pub fn decisions(&self) -> u64 {
        self.admitted + self.shed + self.throttled
    }

    /// Fraction of decided requests that were shed or throttled
    /// (`0.0` when the trace carries no admission decisions).
    pub fn shed_rate(&self) -> f64 {
        let total = self.decisions();
        if total == 0 {
            return 0.0;
        }
        (self.shed + self.throttled) as f64 / total as f64
    }

    /// Whether any admission event appeared in the trace.
    pub fn any(&self) -> bool {
        self.decisions() + self.queued + self.retry_denied > 0
    }
}

/// Aggregate of the domestic proxy's `scholarcloud/cache` events: how
/// the shared content cache answered plain-HTTP gateway requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Requests served directly from a fresh entry.
    pub hits: u64,
    /// Requests that triggered a full upstream fetch.
    pub misses: u64,
    /// Requests attached as waiters to an in-flight fetch.
    pub coalesced: u64,
    /// Stale entries refreshed by a 304 from the origin.
    pub revalidated: u64,
    /// Entries evicted under byte-budget pressure.
    pub evicted: u64,
}

impl CacheStats {
    /// Requests the cache answered without a full upstream body fetch.
    pub fn served(&self) -> u64 {
        self.hits + self.coalesced + self.revalidated
    }

    /// Fraction of cache-path requests answered without a full upstream
    /// fetch (`0.0` when the trace carries no cache decisions).
    pub fn hit_rate(&self) -> f64 {
        let total = self.served() + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.served() as f64 / total as f64
    }

    /// Whether any cache event appeared in the trace.
    pub fn any(&self) -> bool {
        self.served() + self.misses + self.evicted > 0
    }
}

/// Aggregate of the domestic-proxy *fleet* events: browser-side PAC
/// failover (`web/fleet`) and proxy-side cache peering + fleet-wide
/// shedding (`scholarcloud/fleet`), plus the per-shard breakdown of
/// shard-tagged cache events.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Browser connects to a fleet member that succeeded.
    pub connect_ok: u64,
    /// Browser connects that failed (timeout / refusal / reset).
    pub connect_fail: u64,
    /// Members dead-marked by a browser (with re-probe backoff).
    pub dead_marks: u64,
    /// Dead-marked members that rejoined via a successful re-probe.
    pub recoveries: u64,
    /// Page loads replayed down the PAC fallback list.
    pub failovers: u64,
    /// Non-owner misses forwarded to the owning shard (requester side).
    pub peer_fetches: u64,
    /// Peer-forwarded requests answered as the key's owner.
    pub peer_serves: u64,
    /// Peers dead-marked by a proxy after a failed peering hop.
    pub peer_deaths: u64,
    /// Requests shed by fleet-wide admission pressure (sickest shard).
    pub fleet_sheds: u64,
    /// Shard index → that shard's cache decisions (from shard-tagged
    /// `scholarcloud/cache` events; empty for single-proxy traces).
    pub shard_cache: BTreeMap<u64, CacheStats>,
    /// Shard index → `(peer fetches sent, peer requests served)`.
    pub shard_peering: BTreeMap<u64, (u64, u64)>,
}

impl FleetStats {
    /// Fraction of browser→member connects that succeeded (`None` when
    /// the trace carries no fleet connect events).
    pub fn availability(&self) -> Option<f64> {
        let total = self.connect_ok + self.connect_fail;
        if total == 0 {
            return None;
        }
        Some(self.connect_ok as f64 / total as f64)
    }

    /// Whether any fleet event appeared in the trace.
    pub fn any(&self) -> bool {
        self.connect_ok
            + self.connect_fail
            + self.dead_marks
            + self.failovers
            + self.peer_fetches
            + self.peer_serves
            + self.fleet_sheds
            > 0
            || !self.shard_cache.is_empty()
    }
}

/// Aggregate of the elastic remote tier (`scholarcloud/elastic`
/// events): instance lifecycle transitions, cold-start latency
/// samples, blacklist churn, and the cumulative cost meters. The proxy
/// publishes the cost meters as running totals every autoscaler tick,
/// so the last `cost` event in the trace wins.
#[derive(Debug, Clone, Default)]
pub struct ElasticStats {
    /// Instances the autoscaler started provisioning.
    pub provisions: u64,
    /// Provisioned instances that finished their cold start.
    pub warms: u64,
    /// Instances drained because demand fell (idle timeout).
    pub drains_idle: u64,
    /// Instances drained because the GFW blacklisted their IP.
    pub drains_blacklist: u64,
    /// Drained instances fully retired (no in-flight streams left).
    pub retires: u64,
    /// Blacklist churns (breaker opened → retire + replace at a
    /// fresh address).
    pub churns: u64,
    /// Cold-start latencies observed (µs), in warm order.
    pub cold_starts_us: Vec<u64>,
    /// Peak live (warm + provisioning) instance count seen.
    pub peak_live: u64,
    /// Final cumulative per-invocation cost (micro-dollars).
    pub invocation_micro: u64,
    /// Final cumulative egress cost (micro-dollars).
    pub egress_micro: u64,
    /// Final cumulative warm-idle cost (micro-dollars).
    pub warm_micro: u64,
    /// Final cumulative total cost (micro-dollars).
    pub total_micro: u64,
    /// Instance state transitions in trace order:
    /// `(t_us, instance address, transition)` where transition is one
    /// of `provision`, `warm`, `drain`, `retire`, `churn`.
    pub timeline: Vec<(u64, String, String)>,
}

impl ElasticStats {
    /// Whether any elastic event appeared in the trace.
    pub fn any(&self) -> bool {
        self.provisions + self.warms + self.retires + self.churns + self.total_micro > 0
            || !self.timeline.is_empty()
    }

    /// p95 cold-start latency (µs); `None` without warm events.
    pub fn cold_start_p95_us(&self) -> Option<u64> {
        if self.cold_starts_us.is_empty() {
            return None;
        }
        let mut v = self.cold_starts_us.clone();
        v.sort_unstable();
        Some(quantile_sorted(&v, 0.95))
    }

    /// Cost per successful page load in micro-dollars; `None` when the
    /// trace carries no cost data or no load succeeded.
    pub fn cost_per_ok_load_micro(&self, ok_loads: u64) -> Option<f64> {
        if self.total_micro == 0 || ok_loads == 0 {
            return None;
        }
        Some(self.total_micro as f64 / ok_loads as f64)
    }
}

/// Aggregate of the arms race between a reactive censor and the
/// deployment's defenses: the censor's fingerprint learning and probing
/// campaigns (`gfw/adaptive` + `gfw/probe` events) against the
/// defense's decoy deflections and detection-driven scheme rotations
/// (`scholarcloud/remote` auth failures, `scholarcloud/adaptive`
/// rotations).
#[derive(Debug, Clone, Default)]
pub struct AdaptiveStats {
    /// Cover fingerprints the censor promoted to blockable signatures.
    pub signatures_learned: u64,
    /// Learned signatures that expired unrefreshed (the rotation
    /// defense starving the censor's rule set).
    pub signatures_expired: u64,
    /// Probing campaigns launched against suspect servers.
    pub campaigns: u64,
    /// Probe waves queued by campaigns.
    pub probe_waves: u64,
    /// Probes the censor actually launched (campaign and suspect-driven
    /// alike).
    pub probes_launched: u64,
    /// Launched probes that replayed a captured preamble.
    pub probes_replayed: u64,
    /// Probe verdicts that confirmed a server as a proxy.
    pub probes_confirmed: u64,
    /// Probe verdicts that cleared a server as innocent.
    pub probes_innocent: u64,
    /// Hostile connections the deployment answered with a decoy
    /// (remote-side auth failures: garbage, bad MACs, replays).
    pub probes_deflected: u64,
    /// Servers the adaptive censor escalated to the IP blacklist.
    pub blacklisted: u64,
    /// Per-region enforcement drift re-rolls observed.
    pub region_rolls: u64,
    /// Detection-driven scheme rotations the domestic proxy performed.
    pub rotations: u64,
    /// Non-HTTP garbage the domestic proxy decoyed instead of aborting.
    pub domestic_decoys: u64,
    /// When the censor first learned a signature (µs), if ever — the
    /// time-to-detection headline number.
    pub first_detection_us: Option<u64>,
    /// When the first probing campaign started (µs), if any.
    pub first_campaign_us: Option<u64>,
}

impl AdaptiveStats {
    /// Whether any adaptive-censor (or rotation-defense) event appeared
    /// in the trace. Plain suspect probing does not count: pre-adaptive
    /// traces keep rendering exactly as before.
    pub fn any(&self) -> bool {
        self.signatures_learned
            + self.signatures_expired
            + self.campaigns
            + self.probe_waves
            + self.blacklisted
            + self.region_rolls
            + self.rotations
            > 0
    }

    /// Fraction of launched probes that came back `confirmed` — the
    /// censor's hit rate against the deployment. `None` when the trace
    /// carries no probe launches.
    pub fn detection_rate(&self) -> Option<f64> {
        if self.probes_launched == 0 {
            return None;
        }
        Some(self.probes_confirmed as f64 / self.probes_launched as f64)
    }

    /// Microseconds from t = 0 to the censor's first learned signature;
    /// `None` if the censor never learned one.
    pub fn time_to_detection_us(&self) -> Option<u64> {
        self.first_detection_us
    }
}

/// Everything the analyzer extracts from one trace.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// Events parsed.
    pub events: usize,
    /// Last event timestamp (µs).
    pub t_end_us: u64,
    /// Events per component.
    pub component_counts: BTreeMap<String, u64>,
    /// Closed spans, in end order.
    pub spans: Vec<ClosedSpan>,
    /// `span_start`s never matched by a `span_end`.
    pub unclosed_spans: usize,
    /// Reconstructed page loads, in end order.
    pub page_loads: Vec<PageLoad>,
    /// Phase aggregates across all page loads.
    pub phase_totals: BTreeMap<String, PhaseAgg>,
    /// rule → window index → interference event count.
    pub rule_timeline: BTreeMap<String, BTreeMap<u64, u64>>,
    /// SLO alerts found in the trace: `(t_us, fire|resolve, slo, burn)`.
    pub slo_alerts: Vec<(u64, String, String, f64)>,
    /// Exemplar trace ids carried on fired alerts:
    /// `(t_us, slo, trace ids)` — the worst requests of the burn window.
    pub alert_exemplars: Vec<(u64, String, Vec<u64>)>,
    /// Stitched per-request trace trees, in trace-id order.
    pub trees: Vec<TraceTree>,
    /// Exclusive time blamed on each tier, summed over completed
    /// requests' trees.
    pub tier_totals: BTreeMap<&'static str, u64>,
    /// Injected faults, in time order: `(t_us, "component/name")` —
    /// `simnet/link_down`, `gfw/blacklist_ip`, ….
    pub faults: Vec<(u64, String)>,
    /// Timestamps of ScholarCloud failover decisions (a retry moved to a
    /// different remote).
    pub failover_times: Vec<u64>,
    /// Circuit-breaker transitions: `(t_us, remote, from, to)`.
    pub breaker_transitions: Vec<(u64, String, String, String)>,
    /// Overload-control decisions (`scholarcloud/admission` events).
    pub admission: AdmissionStats,
    /// Shared-cache decisions (`scholarcloud/cache` events).
    pub cache: CacheStats,
    /// Domestic-fleet activity (`web/fleet` + `scholarcloud/fleet`
    /// events and shard-tagged cache decisions).
    pub fleet: FleetStats,
    /// Elastic remote-tier activity (`scholarcloud/elastic` events).
    pub elastic: ElasticStats,
    /// Reactive-censor arms-race activity (`gfw/adaptive`, `gfw/probe`,
    /// `scholarcloud/adaptive` events).
    pub adaptive: AdaptiveStats,
    /// Window width used for timelines (µs).
    pub window_us: u64,
}

impl TraceAnalysis {
    /// Fraction of finished page loads that succeeded, if any finished.
    pub fn availability(&self) -> Option<f64> {
        let finished =
            self.page_loads.iter().filter(|l| l.span.ok.is_some()).count();
        if finished == 0 {
            return None;
        }
        let ok = self.page_loads.iter().filter(|l| l.span.ok == Some(true)).count();
        Some(ok as f64 / finished as f64)
    }

    /// Elastic-tier cost per successful page load (micro-dollars);
    /// `None` when the trace carries no cost data or no load succeeded.
    pub fn cost_per_ok_load_micro(&self) -> Option<f64> {
        let ok =
            self.page_loads.iter().filter(|l| l.span.ok == Some(true)).count() as u64;
        self.elastic.cost_per_ok_load_micro(ok)
    }

    /// Looks up a stitched tree by trace id.
    pub fn tree(&self, trace_id: u64) -> Option<&TraceTree> {
        self.trees.iter().find(|t| t.trace_id == trace_id)
    }

    /// Fraction of completed requests whose trace stitched across
    /// tiers (`None` when the trace has no completed requests).
    pub fn attribution_coverage(&self) -> Option<f64> {
        let completed = self.trees.iter().filter(|t| t.completed()).count();
        if completed == 0 {
            return None;
        }
        let stitched =
            self.trees.iter().filter(|t| t.completed() && t.stitched()).count();
        Some(stitched as f64 / completed as f64)
    }

    /// Availability restricted to page loads that finished at or after
    /// the censor's first probing campaign — what users experienced
    /// while under active attack. `None` when the trace carries no
    /// campaign or no load finished after it started.
    pub fn availability_under_campaign(&self) -> Option<f64> {
        let start = self.adaptive.first_campaign_us?;
        let finished = self
            .page_loads
            .iter()
            .filter(|l| l.span.ok.is_some() && l.span.end_us >= start)
            .count();
        if finished == 0 {
            return None;
        }
        let ok = self
            .page_loads
            .iter()
            .filter(|l| l.span.ok == Some(true) && l.span.end_us >= start)
            .count();
        Some(ok as f64 / finished as f64)
    }

    /// Completed trees, slowest first (ties broken by trace id) —
    /// the "worst requests" view the report and exemplars reference.
    pub fn slowest(&self, k: usize) -> Vec<&TraceTree> {
        let mut completed: Vec<&TraceTree> =
            self.trees.iter().filter(|t| t.completed()).collect();
        completed.sort_by_key(|t| (std::cmp::Reverse(t.plt_us), t.trace_id));
        completed.truncate(k);
        completed
    }
}

/// The page-load phases the browser instruments, in pipeline order.
pub const PHASES: [&str; 4] = ["dns", "connect", "tunnel", "fetch"];

/// Analyzes a parsed trace with `window_us`-wide timeline windows.
pub fn analyze(events: &[TraceEvent], window_us: u64) -> TraceAnalysis {
    let window_us = window_us.max(1);
    let mut component_counts: BTreeMap<String, u64> = BTreeMap::new();
    // id → (start, component, name, trace_id, parent)
    let mut open: BTreeMap<u64, (u64, String, String, u64, Option<u64>)> = BTreeMap::new();
    let mut spans: Vec<ClosedSpan> = Vec::new();
    // trace id → that request's spans, in close order (resorted later).
    let mut by_trace: BTreeMap<u64, Vec<TraceSpan>> = BTreeMap::new();
    let mut rule_timeline: BTreeMap<String, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut slo_alerts = Vec::new();
    let mut alert_exemplars: Vec<(u64, String, Vec<u64>)> = Vec::new();
    let mut faults = Vec::new();
    let mut failover_times = Vec::new();
    let mut breaker_transitions = Vec::new();
    let mut admission = AdmissionStats::default();
    let mut cache = CacheStats::default();
    let mut fleet = FleetStats::default();
    let mut elastic = ElasticStats::default();
    let mut adaptive = AdaptiveStats::default();
    let mut t_end_us = 0;

    for ev in events {
        t_end_us = t_end_us.max(ev.t_us);
        *component_counts.entry(ev.component.clone()).or_insert(0) += 1;
        match ev.name.as_str() {
            "span_start" => {
                if let (Some(id), Some(name)) = (ev.span, ev.get_str("span_name")) {
                    let trace = ev.get_u64("trace_id").unwrap_or(0);
                    let parent = ev.get_u64("parent");
                    open.insert(
                        id,
                        (ev.t_us, ev.component.clone(), name.to_string(), trace, parent),
                    );
                }
            }
            "span_end" => {
                if let Some(id) = ev.span {
                    if let Some((start_us, component, name, trace, parent)) = open.remove(&id)
                    {
                        let ok = match ev.get("ok") {
                            Some(Json::Bool(b)) => Some(*b),
                            _ => None,
                        };
                        if trace != 0 {
                            by_trace.entry(trace).or_default().push(TraceSpan {
                                id,
                                component: component.clone(),
                                name: name.clone(),
                                start_us,
                                end_us: ev.t_us,
                                closed: true,
                                ok,
                                parent,
                                depth: 0,
                                excl_us: 0,
                            });
                        }
                        spans.push(ClosedSpan {
                            id,
                            component,
                            name,
                            start_us,
                            end_us: ev.t_us,
                            ok,
                        });
                    }
                }
            }
            // Interference: GFW verdicts and the simnet drops they cause
            // both carry the rule label.
            "drop" | "censor_drop" if matches!(ev.component.as_str(), "gfw" | "simnet") => {
                if let Some(rule) = ev.get_str("rule") {
                    *rule_timeline
                        .entry(rule.to_string())
                        .or_default()
                        .entry(ev.t_us / window_us)
                        .or_insert(0) += 1;
                }
            }
            "fire" | "resolve" if ev.component == "slo" => {
                slo_alerts.push((
                    ev.t_us,
                    ev.name.clone(),
                    ev.get_str("slo").unwrap_or("?").to_string(),
                    ev.get("burn").and_then(Json::as_f64).unwrap_or(0.0),
                ));
                if ev.name == "fire" {
                    if let Some(list) = ev.get_str("exemplars") {
                        let ids: Vec<u64> = list
                            .split(',')
                            .filter_map(|t| u64::from_str_radix(t.trim(), 16).ok())
                            .filter(|&t| t != 0)
                            .collect();
                        if !ids.is_empty() {
                            alert_exemplars.push((
                                ev.t_us,
                                ev.get_str("slo").unwrap_or("?").to_string(),
                                ids,
                            ));
                        }
                    }
                }
            }
            // Injected faults: `simnet/fault/<kind>` and `gfw/fault/…`.
            _ if ev.target == "fault" => {
                faults.push((ev.t_us, format!("{}/{}", ev.component, ev.name)));
            }
            "failover" if ev.component == "scholarcloud" => {
                failover_times.push(ev.t_us);
            }
            "admit" | "enqueue" | "dequeue" | "shed" | "throttle" | "retry_denied"
                if ev.component == "scholarcloud" && ev.target == "admission" =>
            {
                match ev.name.as_str() {
                    // A dequeued request was admitted after waiting; its
                    // earlier "enqueue" is counted under `queued`, so
                    // admitted + shed + throttled counts each request once.
                    "admit" | "dequeue" => admission.admitted += 1,
                    "enqueue" => admission.queued += 1,
                    "shed" => admission.shed += 1,
                    "throttle" => admission.throttled += 1,
                    _ => admission.retry_denied += 1,
                }
            }
            "hit" | "miss" | "coalesced" | "revalidated" | "evicted"
                if ev.component == "scholarcloud" && ev.target == "cache" =>
            {
                match ev.name.as_str() {
                    "hit" => cache.hits += 1,
                    "miss" => cache.misses += 1,
                    "coalesced" => cache.coalesced += 1,
                    "revalidated" => cache.revalidated += 1,
                    _ => cache.evicted += 1,
                }
                // Fleet members tag their cache decisions with their
                // shard index; single-proxy traces carry no such field.
                if let Some(shard) = ev.get_u64("shard") {
                    let sc = fleet.shard_cache.entry(shard).or_default();
                    match ev.name.as_str() {
                        "hit" => sc.hits += 1,
                        "miss" => sc.misses += 1,
                        "coalesced" => sc.coalesced += 1,
                        "revalidated" => sc.revalidated += 1,
                        _ => sc.evicted += 1,
                    }
                }
            }
            // Browser-side fleet activity: PAC failover and member
            // liveness, as observed through connect outcomes.
            "connect_ok" | "connect_fail" | "proxy_dead" | "proxy_recovered" | "failover"
                if ev.component == "web" && ev.target == "fleet" =>
            {
                match ev.name.as_str() {
                    "connect_ok" => fleet.connect_ok += 1,
                    "connect_fail" => fleet.connect_fail += 1,
                    "proxy_dead" => fleet.dead_marks += 1,
                    "proxy_recovered" => fleet.recoveries += 1,
                    _ => fleet.failovers += 1,
                }
            }
            // Proxy-side fleet activity: the cache-peering hop, peer
            // liveness, and fleet-wide admission shedding.
            "peer_fetch" | "peer_serve" | "peer_dead" | "fleet_shed"
                if ev.component == "scholarcloud" && ev.target == "fleet" =>
            {
                let shard = ev.get_u64("shard");
                match ev.name.as_str() {
                    "peer_fetch" => {
                        fleet.peer_fetches += 1;
                        if let Some(s) = shard {
                            fleet.shard_peering.entry(s).or_default().0 += 1;
                        }
                    }
                    "peer_serve" => {
                        fleet.peer_serves += 1;
                        if let Some(s) = shard {
                            fleet.shard_peering.entry(s).or_default().1 += 1;
                        }
                    }
                    "peer_dead" => fleet.peer_deaths += 1,
                    _ => fleet.fleet_sheds += 1,
                }
            }
            // Elastic remote tier: instance lifecycle transitions plus
            // the per-tick cost meters (running totals — last wins).
            "provision" | "warm" | "drain" | "retire" | "churn" | "cost"
                if ev.component == "scholarcloud" && ev.target == "elastic" =>
            {
                match ev.name.as_str() {
                    "provision" => elastic.provisions += 1,
                    "warm" => {
                        elastic.warms += 1;
                        let us = ev
                            .get_u64("cold_start_us")
                            .or_else(|| ev.get_str("cold_start_us")?.parse().ok());
                        if let Some(us) = us {
                            elastic.cold_starts_us.push(us);
                        }
                    }
                    "drain" => match ev.get_str("reason") {
                        Some("blacklist") => elastic.drains_blacklist += 1,
                        _ => elastic.drains_idle += 1,
                    },
                    "retire" => elastic.retires += 1,
                    "churn" => elastic.churns += 1,
                    _ => {
                        elastic.peak_live =
                            elastic.peak_live.max(ev.get_u64("live").unwrap_or(0));
                        elastic.invocation_micro =
                            ev.get_u64("invocation_micro").unwrap_or(0);
                        elastic.egress_micro = ev.get_u64("egress_micro").unwrap_or(0);
                        elastic.warm_micro = ev.get_u64("warm_micro").unwrap_or(0);
                        elastic.total_micro = ev.get_u64("total_micro").unwrap_or(0);
                    }
                }
                if ev.name != "cost" {
                    if let Some(inst) = ev.get_str("instance") {
                        elastic.timeline.push((
                            ev.t_us,
                            inst.to_string(),
                            ev.name.clone(),
                        ));
                    }
                }
            }
            // Reactive censor: fingerprint learning, probing campaigns,
            // regional drift, and blacklist escalation.
            "signature_learned" | "signature_expired" | "campaign" | "probe_wave"
            | "region_drift" | "blacklisted"
                if ev.component == "gfw" && ev.target == "adaptive" =>
            {
                match ev.name.as_str() {
                    "signature_learned" => {
                        adaptive.signatures_learned += 1;
                        adaptive.first_detection_us.get_or_insert(ev.t_us);
                    }
                    "signature_expired" => adaptive.signatures_expired += 1,
                    "campaign" => {
                        adaptive.campaigns += 1;
                        adaptive.first_campaign_us.get_or_insert(ev.t_us);
                    }
                    "probe_wave" => adaptive.probe_waves += 1,
                    "region_drift" => adaptive.region_rolls += 1,
                    _ => adaptive.blacklisted += 1,
                }
            }
            // Active-probe traffic (both the pre-adaptive suspect probes
            // and adaptive campaign waves land here).
            "launched" | "verdict" if ev.component == "gfw" && ev.target == "probe" => {
                match ev.name.as_str() {
                    "launched" => {
                        adaptive.probes_launched += 1;
                        if ev.get_u64("replay").is_some() {
                            adaptive.probes_replayed += 1;
                        }
                    }
                    _ => match ev.get_str("verdict") {
                        Some("confirmed") => adaptive.probes_confirmed += 1,
                        Some("innocent") => adaptive.probes_innocent += 1,
                        _ => {}
                    },
                }
            }
            // Defense side: remote decoy deflections and the domestic
            // proxy's detection-driven rotations.
            "auth_fail" if ev.component == "scholarcloud" && ev.target == "remote" => {
                adaptive.probes_deflected += 1;
            }
            "rotate" if ev.component == "scholarcloud" && ev.target == "adaptive" => {
                adaptive.rotations += 1;
            }
            "decoy" if ev.component == "scholarcloud" && ev.target == "domestic" => {
                adaptive.domestic_decoys += 1;
            }
            "breaker" if ev.component == "scholarcloud" => {
                breaker_transitions.push((
                    ev.t_us,
                    ev.get_str("remote").unwrap_or("?").to_string(),
                    ev.get_str("from").unwrap_or("?").to_string(),
                    ev.get_str("to").unwrap_or("?").to_string(),
                ));
            }
            _ => {}
        }
    }

    // Attribute phase spans to page loads by time containment: a phase
    // belongs to the latest-starting page_load whose interval contains
    // the phase's start. (Concurrent clients share one trace without a
    // client id, so this is a heuristic; aggregates stay exact.)
    let mut loads: Vec<PageLoad> = spans
        .iter()
        .filter(|s| s.component == "web" && s.name == "page_load")
        .map(|s| PageLoad {
            span: s.clone(),
            phase_us: BTreeMap::new(),
            covered_us: 0,
        })
        .collect();
    loads.sort_by_key(|l| (l.span.start_us, l.span.id));
    let mut phase_totals: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); loads.len()];
    for s in &spans {
        if s.component != "web" || !PHASES.contains(&s.name.as_str()) {
            continue;
        }
        let agg = phase_totals.entry(s.name.clone()).or_default();
        agg.spans += 1;
        agg.total_us += s.dur_us();
        // Latest-starting load containing the phase start.
        let owner = loads
            .iter()
            .rposition(|l| l.span.start_us <= s.start_us && s.start_us <= l.span.end_us);
        if let Some(i) = owner {
            let clipped_end = s.end_us.min(loads[i].span.end_us);
            *loads[i].phase_us.entry(s.name.clone()).or_insert(0) +=
                clipped_end.saturating_sub(s.start_us);
            intervals[i].push((s.start_us, clipped_end));
        }
    }
    for (load, ivs) in loads.iter_mut().zip(intervals.iter_mut()) {
        load.covered_us = union_len(ivs);
    }

    // A span whose end never made it into the trace (crash, truncation,
    // still in flight at shutdown) joins its tree unclosed, pinned to
    // the trace end, so partial trees still attribute.
    for (&id, (start_us, component, name, trace, parent)) in &open {
        if *trace != 0 {
            by_trace.entry(*trace).or_default().push(TraceSpan {
                id,
                component: component.clone(),
                name: name.clone(),
                start_us: *start_us,
                end_us: t_end_us.max(*start_us),
                closed: false,
                ok: None,
                parent: *parent,
                depth: 0,
                excl_us: 0,
            });
        }
    }
    let trees: Vec<TraceTree> =
        by_trace.into_iter().map(|(id, spans)| stitch_tree(id, spans)).collect();
    let mut tier_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for tree in trees.iter().filter(|t| t.completed()) {
        for (tier, us) in &tree.tier_us {
            *tier_totals.entry(tier).or_insert(0) += us;
        }
    }

    TraceAnalysis {
        events: events.len(),
        t_end_us,
        component_counts,
        unclosed_spans: open.len(),
        spans,
        page_loads: loads,
        phase_totals,
        rule_timeline,
        slo_alerts,
        alert_exemplars,
        trees,
        tier_totals,
        faults,
        failover_times,
        breaker_transitions,
        admission,
        cache,
        fleet,
        elastic,
        adaptive,
        window_us,
    }
}

/// Builds one request's tree from its spans: computes depths from the
/// in-band parent links (orphans re-attach under the root) and runs the
/// exclusive-time sweep over the root's window. Every instant of the
/// root's duration is blamed on exactly one span — the deepest covering
/// span, latest start then highest id as the tie-break — so per-tier
/// exclusive times always sum to the root's wall clock.
fn stitch_tree(trace_id: u64, mut spans: Vec<TraceSpan>) -> TraceTree {
    spans.sort_by_key(|s| (s.start_us, s.id));
    let root = spans
        .iter()
        .position(|s| s.component == "web" && s.name == "page_load");
    let idx_of: BTreeMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();

    // A non-root span whose parent link leads nowhere in this tree is
    // an orphan; it re-attaches under the root for attribution instead
    // of being dropped.
    let orphans = spans
        .iter()
        .enumerate()
        .filter(|&(i, s)| {
            Some(i) != root
                && s.parent.map_or(true, |pid| !idx_of.contains_key(&pid))
        })
        .count();

    // Depths, walking parent links with a step cap so a malformed trace
    // (cycles, self-parents) cannot hang the analyzer.
    let mut depths = vec![0u32; spans.len()];
    for i in 0..spans.len() {
        if Some(i) == root {
            continue;
        }
        let mut depth = 1u32;
        let mut cur = i;
        let mut steps = 0usize;
        while steps < spans.len() {
            match spans[cur].parent.and_then(|pid| idx_of.get(&pid)) {
                Some(&pi) if pi != cur => {
                    if Some(pi) == root {
                        break;
                    }
                    depth += 1;
                    cur = pi;
                    steps += 1;
                }
                // Dead end: an orphan chain top, re-attached under the
                // root at the depth walked so far.
                _ => break,
            }
        }
        depths[i] = depth;
    }
    for (s, d) in spans.iter_mut().zip(depths) {
        s.depth = d;
    }

    let mut tier_us: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut plt_us = 0;
    if let Some(r) = root {
        let (rs, re) = (spans[r].start_us, spans[r].end_us);
        plt_us = re - rs;
        // Elementary intervals over every clipped span boundary.
        let mut bounds: Vec<u64> = vec![rs, re];
        for s in &spans {
            bounds.push(s.start_us.clamp(rs, re));
            bounds.push(s.end_us.clamp(rs, re));
        }
        bounds.sort_unstable();
        bounds.dedup();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a >= b {
                continue;
            }
            let winner = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.start_us.clamp(rs, re) <= a && b <= s.end_us.clamp(rs, re))
                .max_by_key(|(_, s)| (s.depth, s.start_us, s.id))
                .map(|(i, _)| i)
                .unwrap_or(r);
            spans[winner].excl_us += b - a;
        }
        for s in &spans {
            if s.excl_us > 0 {
                *tier_us.entry(s.tier()).or_insert(0) += s.excl_us;
            }
        }
    }

    TraceTree { trace_id, spans, root, orphans, tier_us, plt_us }
}

/// Total length of the union of `[start, end)` intervals (sorts in
/// place).
fn union_len(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                let _ = cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Exact quantile of a sorted slice (nearest-rank).
fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders the full analysis report: header, per-component rates,
/// critical-path table, windowed page-load percentiles, interference
/// timeline, and SLO alerts. Deterministic for a given trace.
pub fn render_report(a: &TraceAnalysis) -> String {
    let mut out = String::new();
    let sim_s = a.t_end_us as f64 / 1e6;
    let wsec = a.window_us as f64 / 1e6;
    let _ = writeln!(out, "scholar-obs — trace analysis");
    let _ = writeln!(
        out,
        "  events: {}   sim span: {:.1} s   spans: {} closed, {} unclosed",
        a.events,
        sim_s,
        a.spans.len(),
        a.unclosed_spans
    );

    out.push_str("\nper-component event rates:\n");
    for (comp, n) in &a.component_counts {
        let rate = if sim_s > 0.0 { *n as f64 / sim_s } else { 0.0 };
        let _ = writeln!(out, "  {comp:<14} {n:>8} events {rate:>10.2}/sim-s");
    }

    // Critical path.
    let ok_loads: Vec<&PageLoad> =
        a.page_loads.iter().filter(|l| l.span.ok != Some(false)).collect();
    let _ = writeln!(
        out,
        "\npage_load critical path ({} loads, {} failed):",
        a.page_loads.len(),
        a.page_loads.iter().filter(|l| l.span.ok == Some(false)).count(),
    );
    if ok_loads.is_empty() {
        out.push_str("  (no completed page_load spans)\n");
    } else {
        let n = ok_loads.len() as f64;
        let mean_plt = ok_loads.iter().map(|l| l.span.dur_us()).sum::<u64>() as f64 / n;
        let _ = writeln!(
            out,
            "  {:<10} {:>7} {:>16} {:>14}",
            "phase", "spans", "mean/load (ms)", "share of PLT"
        );
        for phase in PHASES {
            let agg = a.phase_totals.get(phase).copied().unwrap_or_default();
            let attr: u64 = ok_loads
                .iter()
                .filter_map(|l| l.phase_us.get(phase))
                .sum();
            let mean_ms = attr as f64 / n / 1000.0;
            let share = if mean_plt > 0.0 { attr as f64 / n / mean_plt * 100.0 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {phase:<10} {:>7} {mean_ms:>16.1} {share:>13.1}%",
                agg.spans
            );
        }
        let covered = ok_loads.iter().map(|l| l.covered_us).sum::<u64>() as f64 / n;
        let _ = writeln!(
            out,
            "  mean PLT {:.1} ms; instrumented phases cover {:.1}% of it \
             (phases on parallel connections may overlap)",
            mean_plt / 1000.0,
            if mean_plt > 0.0 { covered / mean_plt * 100.0 } else { 0.0 },
        );
    }

    // Windowed percentiles of page_load durations.
    let _ = writeln!(out, "\npage_load windowed percentiles (window {wsec:.0} s, µs):");
    let mut by_window: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for l in &ok_loads {
        by_window
            .entry(l.span.end_us / a.window_us)
            .or_default()
            .push(l.span.dur_us());
    }
    if by_window.is_empty() {
        out.push_str("  (no completed loads)\n");
    } else {
        for (w, durs) in &mut by_window {
            durs.sort_unstable();
            let lo = w * a.window_us / 1_000_000;
            let hi = (w + 1) * a.window_us / 1_000_000;
            let _ = writeln!(
                out,
                "  [{lo:>5}–{hi:<5}s) n={:<4} p50={:<9} p95={:<9} p99={}",
                durs.len(),
                quantile_sorted(durs, 0.50),
                quantile_sorted(durs, 0.95),
                quantile_sorted(durs, 0.99),
            );
        }
    }

    // Interference timeline.
    let _ = writeln!(out, "\nGFW interference timeline (window {wsec:.0} s):");
    if a.rule_timeline.is_empty() {
        out.push_str("  (no interference events)\n");
    } else {
        let last_w = a.t_end_us / a.window_us;
        for (rule, windows) in &a.rule_timeline {
            let total: u64 = windows.values().sum();
            let peak = windows.values().copied().max().unwrap_or(0);
            let mut lane = String::new();
            for w in 0..=last_w {
                let n = windows.get(&w).copied().unwrap_or(0);
                lane.push(density_char(n, peak));
            }
            let _ = writeln!(out, "  {rule:<22} |{lane}| total {total}");
        }
    }

    // Faults and resilience.
    if !a.faults.is_empty()
        || !a.failover_times.is_empty()
        || !a.breaker_transitions.is_empty()
    {
        out.push_str("\nfaults & resilience:\n");
        for (t, label) in &a.faults {
            let _ = writeln!(out, "  {:>8.1} s  fault     {label}", *t as f64 / 1e6);
        }
        for (t, remote, from, to) in &a.breaker_transitions {
            let _ = writeln!(
                out,
                "  {:>8.1} s  breaker   {remote} {from} → {to}",
                *t as f64 / 1e6
            );
        }
        let _ = writeln!(out, "  failovers: {}", a.failover_times.len());
        if let Some(av) = a.availability() {
            let _ = writeln!(out, "  availability: {:.1}% of finished loads", av * 100.0);
        }
    }

    // Overload control.
    if a.admission.any() {
        out.push_str("\noverload control (scholarcloud admission):\n");
        let _ = writeln!(out, "  admitted:     {}", a.admission.admitted);
        let _ = writeln!(out, "  queued:       {}", a.admission.queued);
        let _ = writeln!(out, "  shed (503):   {}", a.admission.shed);
        let _ = writeln!(out, "  throttled:    {}", a.admission.throttled);
        let _ = writeln!(out, "  retry denied: {}", a.admission.retry_denied);
        let _ = writeln!(out, "  shed rate:    {:.1}%", a.admission.shed_rate() * 100.0);
    }

    // Shared cache.
    if a.cache.any() {
        out.push_str("\nshared cache (scholarcloud gateway):\n");
        let _ = writeln!(out, "  hits:         {}", a.cache.hits);
        let _ = writeln!(out, "  misses:       {}", a.cache.misses);
        let _ = writeln!(out, "  coalesced:    {}", a.cache.coalesced);
        let _ = writeln!(out, "  revalidated:  {}", a.cache.revalidated);
        let _ = writeln!(out, "  evicted:      {}", a.cache.evicted);
        let _ = writeln!(out, "  hit rate:     {:.1}%", a.cache.hit_rate() * 100.0);
    }

    // Domestic fleet.
    if a.fleet.any() {
        out.push_str("\ndomestic fleet (PAC failover + cache peering):\n");
        let _ = writeln!(
            out,
            "  connects:     {} ok / {} failed{}",
            a.fleet.connect_ok,
            a.fleet.connect_fail,
            match a.fleet.availability() {
                Some(av) => format!("  (availability {:.1}%)", av * 100.0),
                None => String::new(),
            },
        );
        let _ = writeln!(
            out,
            "  members:      {} dead-marks, {} failovers, {} recoveries",
            a.fleet.dead_marks, a.fleet.failovers, a.fleet.recoveries
        );
        let _ = writeln!(
            out,
            "  peering:      {} fetches, {} serves, {} peer deaths",
            a.fleet.peer_fetches, a.fleet.peer_serves, a.fleet.peer_deaths
        );
        let _ = writeln!(out, "  fleet sheds:  {}", a.fleet.fleet_sheds);
        let shards: std::collections::BTreeSet<u64> = a
            .fleet
            .shard_cache
            .keys()
            .chain(a.fleet.shard_peering.keys())
            .copied()
            .collect();
        if !shards.is_empty() {
            let _ = writeln!(
                out,
                "  {:<7} {:>7} {:>8} {:>10} {:>10} {:>10}",
                "shard", "hits", "misses", "hit rate", "peer out", "peer in"
            );
            for shard in shards {
                let cs = a.fleet.shard_cache.get(&shard).copied().unwrap_or_default();
                let (pf, ps) =
                    a.fleet.shard_peering.get(&shard).copied().unwrap_or((0, 0));
                let _ = writeln!(
                    out,
                    "  {shard:<7} {:>7} {:>8} {:>9.1}% {:>10} {:>10}",
                    cs.hits,
                    cs.misses,
                    cs.hit_rate() * 100.0,
                    pf,
                    ps,
                );
            }
        }
    }

    // Elastic remote tier.
    if a.elastic.any() {
        out.push_str("\nelastic remote tier (serverless autoscaler):\n");
        let _ = writeln!(
            out,
            "  instances:    {} provisioned, {} warmed, {} retired  (peak live {})",
            a.elastic.provisions, a.elastic.warms, a.elastic.retires, a.elastic.peak_live
        );
        let _ = writeln!(
            out,
            "  drains:       {} idle, {} blacklist  ({} churns)",
            a.elastic.drains_idle, a.elastic.drains_blacklist, a.elastic.churns
        );
        let _ = writeln!(
            out,
            "  cold start:   p95 {}",
            match a.elastic.cold_start_p95_us() {
                Some(us) => format!("{us} µs"),
                None => "n/a".to_string(),
            },
        );
        let _ = writeln!(
            out,
            "  cost:         {} µ$ total ({} invocation + {} egress + {} warm-idle)",
            a.elastic.total_micro,
            a.elastic.invocation_micro,
            a.elastic.egress_micro,
            a.elastic.warm_micro,
        );
        let _ = writeln!(
            out,
            "  per ok load:  {}",
            match a.cost_per_ok_load_micro() {
                Some(c) => format!("{c:.1} µ$"),
                None => "n/a".to_string(),
            },
        );
        if !a.elastic.timeline.is_empty() {
            out.push_str("  timeline (first 12 transitions):\n");
            for (t, inst, what) in a.elastic.timeline.iter().take(12) {
                let _ = writeln!(out, "    {:>10} µs  {inst:<15} {what}", t);
            }
            if a.elastic.timeline.len() > 12 {
                let _ = writeln!(
                    out,
                    "    … {} more transitions",
                    a.elastic.timeline.len() - 12
                );
            }
        }
    }

    // Adaptive censor vs. detection-driven defense.
    if a.adaptive.any() {
        out.push_str("\nadaptive censor (reactive GFW):\n");
        let _ = writeln!(
            out,
            "  detection:    {}",
            match a.adaptive.time_to_detection_us() {
                Some(us) => format!(
                    "first signature at {:.1} s ({} learned, {} expired)",
                    us as f64 / 1e6,
                    a.adaptive.signatures_learned,
                    a.adaptive.signatures_expired
                ),
                None => "never fingerprinted".to_string(),
            },
        );
        let _ = writeln!(
            out,
            "  campaigns:    {} launched, {} probe waves, {} region drift rolls",
            a.adaptive.campaigns, a.adaptive.probe_waves, a.adaptive.region_rolls
        );
        let _ = writeln!(
            out,
            "  probes:       {} launched ({} replayed), {} confirmed / {} innocent, {} deflected by decoys",
            a.adaptive.probes_launched,
            a.adaptive.probes_replayed,
            a.adaptive.probes_confirmed,
            a.adaptive.probes_innocent,
            a.adaptive.probes_deflected,
        );
        let _ = writeln!(
            out,
            "  detect rate:  {}",
            match a.adaptive.detection_rate() {
                Some(r) => format!("{:.1}% of probes confirmed a proxy", r * 100.0),
                None => "n/a (no probes launched)".to_string(),
            },
        );
        let _ = writeln!(
            out,
            "  defense:      {} scheme rotations, {} domestic decoys, {} endpoints blacklisted",
            a.adaptive.rotations, a.adaptive.domestic_decoys, a.adaptive.blacklisted
        );
        let _ = writeln!(
            out,
            "  availability: {}",
            match a.availability_under_campaign() {
                Some(av) => format!("{:.1}% of loads finishing after first campaign succeeded", av * 100.0),
                None => "n/a (no campaign in trace)".to_string(),
            },
        );
    }

    // Cross-tier attribution of stitched request trees.
    if !a.trees.is_empty() {
        let completed = a.trees.iter().filter(|t| t.completed()).count();
        out.push_str("\ncross-tier attribution (stitched request trees):\n");
        let _ = writeln!(
            out,
            "  traces: {}   completed: {completed}   coverage: {}",
            a.trees.len(),
            match a.attribution_coverage() {
                Some(c) => format!("{:.1}%", c * 100.0),
                None => "n/a".to_string(),
            },
        );
        let blamed: u64 = a.tier_totals.values().sum();
        if blamed > 0 {
            let _ = writeln!(out, "  {:<12} {:>14} {:>8}", "tier", "blamed (µs)", "share");
            for (tier, us) in &a.tier_totals {
                let _ = writeln!(
                    out,
                    "  {tier:<12} {us:>14} {:>7.1}%",
                    *us as f64 / blamed as f64 * 100.0
                );
            }
        }
        let slowest = a.slowest(5);
        if !slowest.is_empty() {
            out.push_str("  slowest requests (drill in with --trace <id>):\n");
            for tree in slowest {
                let (tier, share) = tree.dominant_tier().unwrap_or(("?", 0.0));
                let _ = writeln!(
                    out,
                    "    trace {:016x}  plt {:>9.1} ms  dominated by {tier} ({:.0}%)",
                    tree.trace_id,
                    tree.plt_us as f64 / 1000.0,
                    share * 100.0,
                );
            }
        }
    }

    // SLO alerts.
    out.push_str("\nSLO alerts in trace:\n");
    if a.slo_alerts.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for (t, kind, slo, burn) in &a.slo_alerts {
            let _ = writeln!(
                out,
                "  {:>8.1} s  {kind:<8} {slo:<16} burn={burn:.3}",
                *t as f64 / 1e6
            );
        }
        for (t, slo, ids) in &a.alert_exemplars {
            let joined: Vec<String> = ids.iter().map(|id| format!("{id:016x}")).collect();
            let _ = writeln!(
                out,
                "  {:>8.1} s  exemplars {slo:<15} {}",
                *t as f64 / 1e6,
                joined.join(" "),
            );
        }
    }
    out
}

/// Renders one request's cross-tier waterfall: every span of the
/// stitched tree in start order, indented by causal depth, with a
/// timeline bar over the root's window and the exclusive time blamed on
/// each span. Deterministic for a given trace.
pub fn render_waterfall(tree: &TraceTree) -> String {
    const BAR: usize = 48;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {:016x} — {} spans, {} orphan{}, plt {:.1} ms",
        tree.trace_id,
        tree.spans.len(),
        tree.orphans,
        if tree.orphans == 1 { "" } else { "s" },
        tree.plt_us as f64 / 1000.0,
    );
    let Some(r) = tree.root else {
        out.push_str("  (no page_load root — partial trace)\n");
        for s in &tree.spans {
            let _ = writeln!(
                out,
                "  {:<24} {:<10} start {:>10} µs  dur {:>10} µs{}",
                s.name,
                s.tier(),
                s.start_us,
                s.end_us - s.start_us,
                if s.closed { "" } else { "  (unclosed)" },
            );
        }
        return out;
    };
    let (rs, re) = (tree.spans[r].start_us, tree.spans[r].end_us);
    let span_us = (re - rs).max(1);
    let _ = writeln!(
        out,
        "  {:<26} {:<10} {:>10}  {:>10}  {}",
        "span", "tier", "dur (µs)", "excl (µs)", "waterfall"
    );
    for s in &tree.spans {
        let (cs, ce) = (s.start_us.clamp(rs, re), s.end_us.clamp(rs, re));
        let lo = (((cs - rs) as u128 * BAR as u128 / span_us as u128) as usize).min(BAR - 1);
        let hi = ((ce - rs) as u128 * BAR as u128 / span_us as u128) as usize;
        let hi = hi.clamp(lo + 1, BAR); // ≥ 1 cell, even for instants
        let mut bar = String::with_capacity(BAR);
        for c in 0..BAR {
            bar.push(if c >= lo && c < hi { '=' } else { '.' });
        }
        let label = format!("{:indent$}{}", "", s.name, indent = (s.depth as usize) * 2);
        let _ = writeln!(
            out,
            "  {label:<26} {:<10} {:>10}  {:>10}  |{bar}|{}",
            s.tier(),
            s.end_us - s.start_us,
            s.excl_us,
            if s.closed { "" } else { " (unclosed)" },
        );
    }
    out.push_str("  tier blame:");
    for (tier, us) in &tree.tier_us {
        let _ = write!(
            out,
            "  {tier} {:.1}%",
            *us as f64 / tree.plt_us.max(1) as f64 * 100.0
        );
    }
    out.push('\n');
    out
}

/// Renders the machine-readable summary behind `scholar-obs --json`:
/// one JSON object, schema `"scholar-obs/v5"`, with the headline
/// numbers CI gates consume (availability, shed rate, cache hit rate,
/// PLT percentiles). Every `v1` key is kept with its shape unchanged;
/// `v2` appends the cross-tier attribution block (`stitched_traces`,
/// `attribution_coverage`, `tier_us`, `slowest`) and the SLO alert
/// exemplars; `v3` appends the domestic-fleet block
/// (`fleet_availability` and `fleet` with its per-shard breakdown);
/// `v4` appends the elastic-tier block (`cost_per_ok_load_micro` and
/// `elastic` with lifecycle counters, cold-start p95, and the cost
/// meters); `v5` appends the adaptive-censor block (`detection_rate`,
/// `availability_under_campaign`, and `adaptive` with fingerprint,
/// probe-campaign, and defense-rotation counters). Keys are emitted
/// in a fixed order and the output is deterministic for a given
/// trace.
pub fn render_json(a: &TraceAnalysis) -> String {
    let mut plts: Vec<u64> = a
        .page_loads
        .iter()
        .filter(|l| l.span.ok != Some(false))
        .map(|l| l.span.dur_us())
        .collect();
    plts.sort_unstable();
    let failed = a.page_loads.iter().filter(|l| l.span.ok == Some(false)).count();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"scholar-obs/v5\",");
    let _ = writeln!(out, "  \"events\": {},", a.events);
    let _ = writeln!(out, "  \"sim_end_us\": {},", a.t_end_us);
    let _ = writeln!(out, "  \"spans_closed\": {},", a.spans.len());
    let _ = writeln!(out, "  \"spans_unclosed\": {},", a.unclosed_spans);
    let _ = writeln!(out, "  \"page_loads\": {},", a.page_loads.len());
    let _ = writeln!(out, "  \"failed_loads\": {failed},");
    match a.availability() {
        Some(av) => {
            let _ = writeln!(out, "  \"availability\": {},", json_f64(av));
        }
        None => {
            let _ = writeln!(out, "  \"availability\": null,");
        }
    }
    let _ = writeln!(
        out,
        "  \"plt_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}},",
        quantile_sorted(&plts, 0.50),
        quantile_sorted(&plts, 0.95),
        quantile_sorted(&plts, 0.99),
    );
    let _ = writeln!(out, "  \"shed_rate\": {},", json_f64(a.admission.shed_rate()));
    let _ = writeln!(
        out,
        "  \"admission\": {{\"admitted\": {}, \"queued\": {}, \"shed\": {}, \
         \"throttled\": {}, \"retry_denied\": {}}},",
        a.admission.admitted,
        a.admission.queued,
        a.admission.shed,
        a.admission.throttled,
        a.admission.retry_denied,
    );
    let _ = writeln!(out, "  \"cache_hit_rate\": {},", json_f64(a.cache.hit_rate()));
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"revalidated\": {}, \"evicted\": {}}},",
        a.cache.hits,
        a.cache.misses,
        a.cache.coalesced,
        a.cache.revalidated,
        a.cache.evicted,
    );
    let _ = writeln!(out, "  \"failovers\": {},", a.failover_times.len());
    let _ = writeln!(out, "  \"faults\": {},", a.faults.len());
    let _ = writeln!(out, "  \"slo_alerts\": {},", a.slo_alerts.len());
    // v2: cross-tier attribution and alert exemplars.
    let _ = writeln!(out, "  \"stitched_traces\": {},", a.trees.len());
    match a.attribution_coverage() {
        Some(c) => {
            let _ = writeln!(out, "  \"attribution_coverage\": {},", json_f64(c));
        }
        None => {
            let _ = writeln!(out, "  \"attribution_coverage\": null,");
        }
    }
    let tiers: Vec<String> =
        a.tier_totals.iter().map(|(t, us)| format!("\"{t}\": {us}")).collect();
    let _ = writeln!(out, "  \"tier_us\": {{{}}},", tiers.join(", "));
    let slowest: Vec<String> = a
        .slowest(5)
        .iter()
        .map(|t| {
            format!(
                "{{\"trace\": \"{:016x}\", \"plt_us\": {}, \"dominant_tier\": \"{}\"}}",
                t.trace_id,
                t.plt_us,
                t.dominant_tier().map(|(tier, _)| tier).unwrap_or("?"),
            )
        })
        .collect();
    let _ = writeln!(out, "  \"slowest\": [{}],", slowest.join(", "));
    let exemplars: Vec<String> = a
        .alert_exemplars
        .iter()
        .map(|(t, slo, ids)| {
            let traces: Vec<String> =
                ids.iter().map(|id| format!("\"{id:016x}\"")).collect();
            format!(
                "{{\"t_us\": {t}, \"slo\": \"{slo}\", \"traces\": [{}]}}",
                traces.join(", ")
            )
        })
        .collect();
    let _ = writeln!(out, "  \"alert_exemplars\": [{}],", exemplars.join(", "));
    // v3: the domestic-fleet block.
    match a.fleet.availability() {
        Some(av) => {
            let _ = writeln!(out, "  \"fleet_availability\": {},", json_f64(av));
        }
        None => {
            let _ = writeln!(out, "  \"fleet_availability\": null,");
        }
    }
    let shard_keys: std::collections::BTreeSet<u64> = a
        .fleet
        .shard_cache
        .keys()
        .chain(a.fleet.shard_peering.keys())
        .copied()
        .collect();
    let shards: Vec<String> = shard_keys
        .into_iter()
        .map(|shard| {
            let cs = a.fleet.shard_cache.get(&shard).copied().unwrap_or_default();
            let (pf, ps) = a.fleet.shard_peering.get(&shard).copied().unwrap_or((0, 0));
            format!(
                "{{\"shard\": {shard}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
                 \"revalidated\": {}, \"hit_rate\": {}, \"peer_fetches\": {pf}, \
                 \"peer_serves\": {ps}}}",
                cs.hits,
                cs.misses,
                cs.coalesced,
                cs.revalidated,
                json_f64(cs.hit_rate()),
            )
        })
        .collect();
    let _ = writeln!(
        out,
        "  \"fleet\": {{\"connect_ok\": {}, \"connect_fail\": {}, \"dead_marks\": {}, \
         \"failovers\": {}, \"recoveries\": {}, \"peer_fetches\": {}, \"peer_serves\": {}, \
         \"peer_deaths\": {}, \"fleet_sheds\": {}, \"shards\": [{}]}},",
        a.fleet.connect_ok,
        a.fleet.connect_fail,
        a.fleet.dead_marks,
        a.fleet.failovers,
        a.fleet.recoveries,
        a.fleet.peer_fetches,
        a.fleet.peer_serves,
        a.fleet.peer_deaths,
        a.fleet.fleet_sheds,
        shards.join(", "),
    );
    // v4: the elastic-tier block.
    match a.cost_per_ok_load_micro() {
        Some(c) => {
            let _ = writeln!(out, "  \"cost_per_ok_load_micro\": {},", json_f64(c));
        }
        None => {
            let _ = writeln!(out, "  \"cost_per_ok_load_micro\": null,");
        }
    }
    let _ = writeln!(
        out,
        "  \"elastic\": {{\"provisions\": {}, \"warms\": {}, \"drains_idle\": {}, \
         \"drains_blacklist\": {}, \"retires\": {}, \"churns\": {}, \"peak_live\": {}, \
         \"cold_start_p95_us\": {}, \"invocation_micro\": {}, \"egress_micro\": {}, \
         \"warm_micro\": {}, \"total_micro\": {}}},",
        a.elastic.provisions,
        a.elastic.warms,
        a.elastic.drains_idle,
        a.elastic.drains_blacklist,
        a.elastic.retires,
        a.elastic.churns,
        a.elastic.peak_live,
        match a.elastic.cold_start_p95_us() {
            Some(us) => us.to_string(),
            None => "null".to_string(),
        },
        a.elastic.invocation_micro,
        a.elastic.egress_micro,
        a.elastic.warm_micro,
        a.elastic.total_micro,
    );
    // v5: the adaptive-censor block.
    match a.adaptive.detection_rate() {
        Some(r) => {
            let _ = writeln!(out, "  \"detection_rate\": {},", json_f64(r));
        }
        None => {
            let _ = writeln!(out, "  \"detection_rate\": null,");
        }
    }
    match a.availability_under_campaign() {
        Some(av) => {
            let _ = writeln!(out, "  \"availability_under_campaign\": {},", json_f64(av));
        }
        None => {
            let _ = writeln!(out, "  \"availability_under_campaign\": null,");
        }
    }
    let _ = writeln!(
        out,
        "  \"adaptive\": {{\"signatures_learned\": {}, \"signatures_expired\": {}, \
         \"campaigns\": {}, \"probe_waves\": {}, \"probes_launched\": {}, \
         \"probes_replayed\": {}, \"probes_confirmed\": {}, \"probes_innocent\": {}, \
         \"probes_deflected\": {}, \"blacklisted\": {}, \"region_rolls\": {}, \
         \"rotations\": {}, \"domestic_decoys\": {}, \"time_to_detection_us\": {}}}",
        a.adaptive.signatures_learned,
        a.adaptive.signatures_expired,
        a.adaptive.campaigns,
        a.adaptive.probe_waves,
        a.adaptive.probes_launched,
        a.adaptive.probes_replayed,
        a.adaptive.probes_confirmed,
        a.adaptive.probes_innocent,
        a.adaptive.probes_deflected,
        a.adaptive.blacklisted,
        a.adaptive.region_rolls,
        a.adaptive.rotations,
        a.adaptive.domestic_decoys,
        match a.adaptive.time_to_detection_us() {
            Some(us) => us.to_string(),
            None => "null".to_string(),
        },
    );
    out.push_str("}\n");
    out
}

/// Formats an `f64` as a JSON number: Rust's shortest-round-trip
/// `Display`, with non-finite values mapped to `0` (JSON has no
/// NaN/Inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() { format!("{v}") } else { "0".to_string() }
}

/// A density character for the interference lanes.
fn density_char(n: u64, peak: u64) -> char {
    if n == 0 || peak == 0 {
        return '.';
    }
    const RAMP: [char; 5] = [':', '-', '=', '#', '@'];
    let idx = ((n as f64 / peak as f64) * RAMP.len() as f64).ceil() as usize;
    RAMP[idx.clamp(1, RAMP.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Level, SpanId};
    use crate::sink::write_event_json;

    fn line(ev: &Event) -> String {
        let mut s = String::new();
        write_event_json(&mut s, ev);
        s
    }

    #[test]
    fn parses_what_the_writer_emits_including_hostile_strings() {
        let ev = Event::new(17, Level::Warn, "gfw", "verdict", "drop")
            .field("rule", "gfw-\"sni\"")
            .field("host", "例子.测试\n\u{1}".to_string())
            .field("bytes", 1500u64)
            .field("delta", -3i64)
            .field("ratio", 0.5f64)
            .field("nan", f64::NAN)
            .field("ok", false)
            .in_span(SpanId(3));
        let parsed = parse_line(&line(&ev)).unwrap();
        assert_eq!(parsed.t_us, 17);
        assert_eq!(parsed.level, "warn");
        assert_eq!(parsed.component, "gfw");
        assert_eq!(parsed.name, "drop");
        assert_eq!(parsed.span, Some(3));
        assert_eq!(parsed.get_str("rule"), Some("gfw-\"sni\""));
        assert_eq!(parsed.get_str("host"), Some("例子.测试\n\u{1}"));
        assert_eq!(parsed.get_u64("bytes"), Some(1500));
        assert_eq!(parsed.get("delta"), Some(&Json::I64(-3)));
        assert_eq!(parsed.get("ratio"), Some(&Json::F64(0.5)));
        assert_eq!(parsed.get("nan"), Some(&Json::Null));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn malformed_lines_are_errors_with_line_numbers() {
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"t_us\":1}").is_err()); // missing keys
        assert!(parse_line("not json").is_err());
        let text = format!(
            "{}\n\n{}\n{{broken",
            line(&Event::new(1, Level::Info, "a", "b", "c")),
            line(&Event::new(2, Level::Info, "a", "b", "c")),
        );
        let err = parse_trace(&text).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
    }

    fn span_pair(
        id: u64,
        component: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> Vec<TraceEvent> {
        let s = Event::new(start, Level::Info, component, "load", "span_start")
            .field("span_name", name)
            .in_span(SpanId(id));
        let e = Event::new(end, Level::Info, component, "load", "span_end")
            .field("span_name", name)
            .field("dur_us", end - start)
            .field("ok", true)
            .in_span(SpanId(id));
        vec![parse_line(&line(&s)).unwrap(), parse_line(&line(&e)).unwrap()]
    }

    #[test]
    fn critical_path_attributes_phases_to_containing_load() {
        let mut evs = Vec::new();
        evs.extend(span_pair(1, "web", "page_load", 0, 1_000_000));
        evs.extend(span_pair(2, "web", "connect", 0, 200_000));
        evs.extend(span_pair(3, "web", "fetch", 200_000, 900_000));
        // A second, later load with one phase.
        evs.extend(span_pair(4, "web", "page_load", 2_000_000, 2_500_000));
        evs.extend(span_pair(5, "web", "fetch", 2_100_000, 2_400_000));
        // An orphan phase outside any load: counted in totals only.
        evs.extend(span_pair(6, "web", "connect", 5_000_000, 5_100_000));
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.page_loads.len(), 2);
        let l0 = &a.page_loads[0];
        assert_eq!(l0.phase_us.get("connect"), Some(&200_000));
        assert_eq!(l0.phase_us.get("fetch"), Some(&700_000));
        assert_eq!(l0.covered_us, 900_000); // contiguous union
        assert_eq!(a.page_loads[1].phase_us.get("fetch"), Some(&300_000));
        assert_eq!(a.phase_totals.get("connect").unwrap().spans, 2);
        let report = render_report(&a);
        assert!(report.contains("page_load critical path (2 loads"));
        assert!(report.contains("share of PLT"));
    }

    #[test]
    fn interference_and_slo_events_build_timelines() {
        let mk = |t, rule: &'static str| {
            parse_line(&line(
                &Event::new(t, Level::Info, "gfw", "verdict", "drop").field("rule", rule),
            ))
            .unwrap()
        };
        let mut evs = vec![mk(100, "gfw-dns"), mk(200, "gfw-dns"), mk(2_500_000, "gfw-sni")];
        evs.push(
            parse_line(&line(
                &Event::new(3_000_000, Level::Warn, "slo", "alert", "fire")
                    .field("slo", "plt-p95".to_string())
                    .field("burn", 2.5),
            ))
            .unwrap(),
        );
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.rule_timeline["gfw-dns"][&0], 2);
        assert_eq!(a.rule_timeline["gfw-sni"][&2], 1);
        assert_eq!(a.slo_alerts.len(), 1);
        assert_eq!(a.slo_alerts[0].2, "plt-p95");
        let report = render_report(&a);
        assert!(report.contains("gfw-dns"));
        assert!(report.contains("fire"));
        assert!(report.contains("burn=2.500"));
    }

    #[test]
    fn cache_events_aggregate_into_stats() {
        let mk = |t, name: &'static str| {
            parse_line(&line(
                &Event::new(t, Level::Debug, "scholarcloud", "cache", name)
                    .field("host", "scholar.google.com")
                    .field("path", "/"),
            ))
            .unwrap()
        };
        let evs = vec![
            mk(100, "miss"),
            mk(200, "coalesced"),
            mk(300, "coalesced"),
            mk(400, "hit"),
            mk(500, "revalidated"),
            mk(600, "evicted"),
            // Same names under a different target must not count.
            parse_line(&line(&Event::new(700, Level::Debug, "web", "cache", "hit"))).unwrap(),
        ];
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.cache.hits, 1);
        assert_eq!(a.cache.misses, 1);
        assert_eq!(a.cache.coalesced, 2);
        assert_eq!(a.cache.revalidated, 1);
        assert_eq!(a.cache.evicted, 1);
        assert_eq!(a.cache.served(), 4);
        assert!((a.cache.hit_rate() - 0.8).abs() < 1e-9);
        assert!(a.cache.any());
        let report = render_report(&a);
        assert!(report.contains("shared cache (scholarcloud gateway)"));
        assert!(report.contains("hit rate:     80.0%"));
        // A trace with no cache events renders no cache section.
        let empty = analyze(&[], 1_000_000);
        assert!(!empty.cache.any());
        assert!(!render_report(&empty).contains("shared cache"));
    }

    #[test]
    fn union_len_merges_overlaps() {
        let mut ivs = vec![(0, 10), (5, 15), (20, 30)];
        assert_eq!(union_len(&mut ivs), 25);
        assert_eq!(union_len(&mut []), 0);
    }

    #[test]
    fn parse_json_handles_nesting_arrays_and_whitespace() {
        let v = parse_json(
            "{\n  \"a\": [1, 2.5, \"x\", {\"b\": true}, []],\n  \"c\": null\n}\n",
        )
        .unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3].get("b"), Some(&Json::Bool(true)));
        assert_eq!(arr[4].as_arr(), Some(&[][..]));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    /// The `--json` schema contract: every key CI consumes must be
    /// present with the right shape, and the output must parse with our
    /// own parser.
    #[test]
    fn render_json_schema_is_stable() {
        let mut evs = Vec::new();
        evs.extend(span_pair(1, "web", "page_load", 0, 1_000_000));
        evs.extend(span_pair(2, "web", "page_load", 0, 3_000_000));
        let mk = |t, name: &'static str| {
            parse_line(&line(&Event::new(t, Level::Debug, "scholarcloud", "cache", name)))
                .unwrap()
        };
        evs.push(mk(100, "miss"));
        evs.push(mk(200, "hit"));
        let a = analyze(&evs, 1_000_000);
        let text = render_json(&a);
        let v = parse_json(&text).expect("render_json must emit valid JSON");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("scholar-obs/v5"));
        // Every v1 key survives with its v1 shape.
        for key in [
            "events",
            "sim_end_us",
            "spans_closed",
            "spans_unclosed",
            "page_loads",
            "failed_loads",
            "failovers",
            "faults",
            "slo_alerts",
            "stitched_traces",
        ] {
            assert!(v.get(key).and_then(Json::as_u64).is_some(), "missing u64 key {key}");
        }
        for key in ["availability", "shed_rate", "cache_hit_rate"] {
            assert!(v.get(key).and_then(Json::as_f64).is_some(), "missing f64 key {key}");
        }
        let plt = v.get("plt_us").expect("plt_us object");
        assert_eq!(plt.get("p50").and_then(Json::as_u64), Some(1_000_000));
        assert_eq!(plt.get("p95").and_then(Json::as_u64), Some(3_000_000));
        assert_eq!(v.get("page_loads").and_then(Json::as_u64), Some(2));
        assert!((v.get("availability").and_then(Json::as_f64).unwrap() - 1.0).abs() < 1e-9);
        assert!((v.get("cache_hit_rate").and_then(Json::as_f64).unwrap() - 0.5).abs() < 1e-9);
        // v2 keys: untraced spans make no trees, so coverage is null and
        // the attribution arrays are empty but present.
        assert_eq!(v.get("attribution_coverage"), Some(&Json::Null));
        assert!(matches!(v.get("tier_us"), Some(Json::Obj(_))));
        assert_eq!(v.get("slowest").and_then(Json::as_arr).map(<[_]>::len), Some(0));
        assert_eq!(
            v.get("alert_exemplars").and_then(Json::as_arr).map(<[_]>::len),
            Some(0)
        );
        // v3 keys: no fleet events → availability null, counters zero,
        // shard array empty but present.
        assert_eq!(v.get("fleet_availability"), Some(&Json::Null));
        let fleet = v.get("fleet").expect("fleet object");
        for key in [
            "connect_ok",
            "connect_fail",
            "dead_marks",
            "failovers",
            "recoveries",
            "peer_fetches",
            "peer_serves",
            "peer_deaths",
            "fleet_sheds",
        ] {
            assert_eq!(fleet.get(key).and_then(Json::as_u64), Some(0), "fleet key {key}");
        }
        assert_eq!(fleet.get("shards").and_then(Json::as_arr).map(<[_]>::len), Some(0));
        // v4 keys: no elastic events → cost per load null, counters
        // zero, cold-start p95 null.
        assert_eq!(v.get("cost_per_ok_load_micro"), Some(&Json::Null));
        let elastic = v.get("elastic").expect("elastic object");
        for key in [
            "provisions",
            "warms",
            "drains_idle",
            "drains_blacklist",
            "retires",
            "churns",
            "peak_live",
            "invocation_micro",
            "egress_micro",
            "warm_micro",
            "total_micro",
        ] {
            assert_eq!(
                elastic.get(key).and_then(Json::as_u64),
                Some(0),
                "elastic key {key}"
            );
        }
        assert_eq!(elastic.get("cold_start_p95_us"), Some(&Json::Null));
        // v5 keys: no adaptive events → detection rate and
        // availability-under-campaign null, counters zero.
        assert_eq!(v.get("detection_rate"), Some(&Json::Null));
        assert_eq!(v.get("availability_under_campaign"), Some(&Json::Null));
        let adaptive = v.get("adaptive").expect("adaptive object");
        for key in [
            "signatures_learned",
            "signatures_expired",
            "campaigns",
            "probe_waves",
            "probes_launched",
            "probes_replayed",
            "probes_confirmed",
            "probes_innocent",
            "probes_deflected",
            "blacklisted",
            "region_rolls",
            "rotations",
            "domestic_decoys",
        ] {
            assert_eq!(
                adaptive.get(key).and_then(Json::as_u64),
                Some(0),
                "adaptive key {key}"
            );
        }
        assert_eq!(adaptive.get("time_to_detection_us"), Some(&Json::Null));
        // No finished loads → availability is null, still valid JSON.
        let empty = analyze(&[], 1_000_000);
        let v = parse_json(&render_json(&empty)).unwrap();
        assert_eq!(v.get("availability"), Some(&Json::Null));
    }

    /// Fleet traces: `web/fleet` + `scholarcloud/fleet` events and
    /// shard-tagged cache decisions aggregate into `FleetStats`, the
    /// report grows a fleet section, and the JSON carries the v3 block.
    #[test]
    fn fleet_events_aggregate_per_shard() {
        let web = |t, name: &'static str| {
            parse_line(&line(
                &Event::new(t, Level::Debug, "web", "fleet", name)
                    .field("proxy", "10.1.0.2:8080"),
            ))
            .unwrap()
        };
        let sc = |t, name: &'static str, shard: u64| {
            parse_line(&line(
                &Event::new(t, Level::Debug, "scholarcloud", "fleet", name)
                    .field("shard", shard),
            ))
            .unwrap()
        };
        let cache = |t, name: &'static str, shard: u64| {
            parse_line(&line(
                &Event::new(t, Level::Debug, "scholarcloud", "cache", name)
                    .field("shard", shard),
            ))
            .unwrap()
        };
        let evs = vec![
            web(100, "connect_ok"),
            web(200, "connect_ok"),
            web(300, "connect_fail"),
            web(310, "proxy_dead"),
            web(320, "failover"),
            web(900, "proxy_recovered"),
            sc(400, "peer_fetch", 1),
            sc(410, "peer_serve", 0),
            sc(500, "peer_dead", 1),
            sc(600, "fleet_shed", 2),
            cache(700, "hit", 0),
            cache(710, "hit", 0),
            cache(720, "miss", 1),
        ];
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.fleet.connect_ok, 2);
        assert_eq!(a.fleet.connect_fail, 1);
        assert_eq!(a.fleet.dead_marks, 1);
        assert_eq!(a.fleet.failovers, 1);
        assert_eq!(a.fleet.recoveries, 1);
        assert_eq!(a.fleet.peer_fetches, 1);
        assert_eq!(a.fleet.peer_serves, 1);
        assert_eq!(a.fleet.peer_deaths, 1);
        assert_eq!(a.fleet.fleet_sheds, 1);
        assert!((a.fleet.availability().unwrap() - 2.0 / 3.0).abs() < 1e-9);
        // Shard-tagged cache events split per shard AND still count in
        // the fleet-wide cache totals.
        assert_eq!(a.cache.hits, 2);
        assert_eq!(a.cache.misses, 1);
        assert_eq!(a.fleet.shard_cache.get(&0).map(|s| s.hits), Some(2));
        assert_eq!(a.fleet.shard_cache.get(&1).map(|s| s.misses), Some(1));
        assert_eq!(a.fleet.shard_peering.get(&1), Some(&(1, 0)));
        assert_eq!(a.fleet.shard_peering.get(&0), Some(&(0, 1)));
        let report = render_report(&a);
        assert!(report.contains("domestic fleet (PAC failover + cache peering)"));
        assert!(report.contains("availability 66.7%"));
        let v = parse_json(&render_json(&a)).unwrap();
        let fleet = v.get("fleet").expect("fleet object");
        assert_eq!(fleet.get("connect_ok").and_then(Json::as_u64), Some(2));
        // Shards 0 and 1 carried cache/peering traffic; the shard that
        // only shed (2) has no per-shard row.
        assert_eq!(fleet.get("shards").and_then(Json::as_arr).map(<[_]>::len), Some(2));
        // A single-proxy trace renders no fleet section.
        let empty = analyze(&[], 1_000_000);
        assert!(!empty.fleet.any());
        assert!(!render_report(&empty).contains("domestic fleet"));
    }

    /// Elastic traces: lifecycle transitions + per-tick cost events
    /// aggregate into `ElasticStats`, the last cost event's running
    /// totals win, the report grows an elastic section, and the JSON
    /// carries the v4 block.
    #[test]
    fn elastic_events_aggregate_and_last_cost_wins() {
        let el = |t, name: &'static str, extra: &[(&'static str, &str)]| {
            let mut ev = Event::new(t, Level::Info, "scholarcloud", "elastic", name)
                .field("instance", "99.0.1.2");
            for (k, v) in extra {
                ev = ev.field(*k, v.to_string());
            }
            parse_line(&line(&ev)).unwrap()
        };
        let cost = |t, live: u64, inv: u64, eg: u64, warm: u64| {
            parse_line(&line(
                &Event::new(t, Level::Info, "scholarcloud", "elastic", "cost")
                    .field("warm", live)
                    .field("live", live)
                    .field("invocation_micro", inv)
                    .field("egress_micro", eg)
                    .field("warm_micro", warm)
                    .field("total_micro", inv + eg + warm),
            ))
            .unwrap()
        };
        let mut evs = span_pair(1, "web", "page_load", 0, 1_000_000);
        evs.push(el(100, "provision", &[("cold_start_us", "400000")]));
        evs.push(el(400_100, "warm", &[("cold_start_us", "400000")]));
        evs.push(el(600_000, "churn", &[]));
        evs.push(el(700_000, "drain", &[("reason", "blacklist")]));
        evs.push(el(800_000, "drain", &[("reason", "idle")]));
        evs.push(el(900_000, "retire", &[]));
        evs.push(cost(500_000, 2, 100, 0, 10));
        evs.push(cost(1_000_000, 3, 250, 90, 40));
        let a = analyze(&evs, 1_000_000);
        assert!(a.elastic.any());
        assert_eq!(a.elastic.provisions, 1);
        assert_eq!(a.elastic.warms, 1);
        assert_eq!(a.elastic.churns, 1);
        assert_eq!(a.elastic.drains_blacklist, 1);
        assert_eq!(a.elastic.drains_idle, 1);
        assert_eq!(a.elastic.retires, 1);
        assert_eq!(a.elastic.cold_start_p95_us(), Some(400_000));
        assert_eq!(a.elastic.peak_live, 3);
        // The cost meters are running totals: the later event wins.
        assert_eq!(a.elastic.total_micro, 380);
        assert_eq!(a.elastic.egress_micro, 90);
        // One successful page load → cost per ok load is the total.
        assert_eq!(a.cost_per_ok_load_micro(), Some(380.0));
        // Every lifecycle transition lands on the timeline; cost
        // events do not.
        assert_eq!(a.elastic.timeline.len(), 6);
        assert_eq!(a.elastic.timeline[0].2, "provision");
        let report = render_report(&a);
        assert!(report.contains("elastic remote tier"), "{report}");
        assert!(report.contains("per ok load:  380.0"), "{report}");
        let v = parse_json(&render_json(&a)).unwrap();
        let ej = v.get("elastic").expect("elastic object");
        assert_eq!(ej.get("total_micro").and_then(Json::as_u64), Some(380));
        assert_eq!(ej.get("cold_start_p95_us").and_then(Json::as_u64), Some(400_000));
        assert!(
            (v.get("cost_per_ok_load_micro").and_then(Json::as_f64).unwrap() - 380.0)
                .abs()
                < 1e-9
        );
        // A trace without elastic events renders no elastic section.
        let empty = analyze(&[], 1_000_000);
        assert!(!empty.elastic.any());
        assert!(!render_report(&empty).contains("elastic remote tier"));
    }

    /// Adaptive traces: fingerprint/campaign/probe events on the censor
    /// side plus rotation/decoy events on the defense side aggregate
    /// into `AdaptiveStats`, availability-under-campaign counts only
    /// loads finishing after the first campaign, the report grows an
    /// adaptive section, and the JSON carries the v5 block.
    #[test]
    fn adaptive_events_aggregate_and_availability_tracks_campaign() {
        let gfw = |t, target: &'static str, name: &'static str, extra: &[(&'static str, &str)]| {
            let mut ev = Event::new(t, Level::Info, "gfw", target, name);
            for (k, v) in extra {
                ev = ev.field(*k, v.to_string());
            }
            parse_line(&line(&ev)).unwrap()
        };
        let sc = |t, target: &'static str, name: &'static str, extra: &[(&'static str, &str)]| {
            let mut ev = Event::new(t, Level::Info, "scholarcloud", target, name);
            for (k, v) in extra {
                ev = ev.field(*k, v.to_string());
            }
            parse_line(&line(&ev)).unwrap()
        };
        let mut evs = Vec::new();
        // Two loads finish before the campaign (one fails — ignored by
        // the campaign metric), then one ok + one failed finish after.
        evs.extend(traced_pair(1, "web", "page_load", 0, 900_000, 1, None, true));
        evs.extend(traced_pair(2, "web", "page_load", 0, 950_000, 2, None, false));
        evs.extend(traced_pair(3, "web", "page_load", 1_000_000, 2_100_000, 3, None, true));
        evs.extend(traced_pair(4, "web", "page_load", 1_000_000, 2_200_000, 4, None, false));
        evs.push(gfw(500_000, "adaptive", "signature_learned", &[("signature", "47455420"), ("flows", "6")]));
        evs.push(gfw(600_000, "adaptive", "campaign", &[("server", "99.0.0.40:9443"), ("score", "7")]));
        evs.push(gfw(600_000, "adaptive", "probe_wave", &[("wave", "0")]));
        evs.push(
            parse_line(&line(
                &Event::new(610_000, Level::Info, "gfw", "probe", "launched")
                    .field("server", "99.0.0.40:9443")
                    .field("replay", 1u64),
            ))
            .unwrap(),
        );
        evs.push(gfw(620_000, "probe", "verdict", &[("verdict", "innocent")]));
        evs.push(gfw(700_000, "probe", "launched", &[("server", "99.0.0.40:9443")]));
        evs.push(gfw(710_000, "probe", "verdict", &[("verdict", "confirmed")]));
        evs.push(gfw(720_000, "adaptive", "blacklisted", &[("server", "99.0.0.40:9443")]));
        evs.push(gfw(800_000, "adaptive", "region_drift", &[("region", "1"), ("enforcing", "0")]));
        evs.push(gfw(900_000, "adaptive", "signature_expired", &[("signature", "47455420")]));
        evs.push(sc(615_000, "remote", "auth_fail", &[("reason", "replayed_preamble")]));
        evs.push(sc(650_000, "adaptive", "rotate", &[("from", "bytemap"), ("to", "xor_rolling"), ("evidence", "3")]));
        evs.push(sc(660_000, "domestic", "decoy", &[("reason", "not_http")]));
        // A plain scheme rotation (ops-driven, not adaptive) must NOT
        // count toward the adaptive rotation total.
        evs.push(sc(670_000, "scheme", "rotate", &[("from", "bytemap"), ("to", "xor_rolling")]));
        let a = analyze(&evs, 1_000_000);
        assert!(a.adaptive.any());
        assert_eq!(a.adaptive.signatures_learned, 1);
        assert_eq!(a.adaptive.signatures_expired, 1);
        assert_eq!(a.adaptive.campaigns, 1);
        assert_eq!(a.adaptive.probe_waves, 1);
        assert_eq!(a.adaptive.probes_launched, 2);
        assert_eq!(a.adaptive.probes_replayed, 1);
        assert_eq!(a.adaptive.probes_confirmed, 1);
        assert_eq!(a.adaptive.probes_innocent, 1);
        assert_eq!(a.adaptive.probes_deflected, 1);
        assert_eq!(a.adaptive.blacklisted, 1);
        assert_eq!(a.adaptive.region_rolls, 1);
        assert_eq!(a.adaptive.rotations, 1, "ops scheme rotate must not count");
        assert_eq!(a.adaptive.domestic_decoys, 1);
        assert_eq!(a.adaptive.time_to_detection_us(), Some(500_000));
        assert_eq!(a.adaptive.detection_rate(), Some(0.5));
        // Only the two loads that finished at/after t=600000 count:
        // one ok, one failed → 50%.
        let av = a.availability_under_campaign().unwrap();
        assert!((av - 0.5).abs() < 1e-9, "{av}");
        let report = render_report(&a);
        assert!(report.contains("adaptive censor (reactive GFW)"), "{report}");
        assert!(report.contains("first signature at 0.5 s"), "{report}");
        let v = parse_json(&render_json(&a)).unwrap();
        let aj = v.get("adaptive").expect("adaptive object");
        assert_eq!(aj.get("probes_launched").and_then(Json::as_u64), Some(2));
        assert_eq!(aj.get("rotations").and_then(Json::as_u64), Some(1));
        assert_eq!(aj.get("time_to_detection_us").and_then(Json::as_u64), Some(500_000));
        assert!((v.get("detection_rate").and_then(Json::as_f64).unwrap() - 0.5).abs() < 1e-9);
        assert!(
            (v.get("availability_under_campaign").and_then(Json::as_f64).unwrap() - 0.5)
                .abs()
                < 1e-9
        );
        // A trace without adaptive events renders no adaptive section.
        let empty = analyze(&[], 1_000_000);
        assert!(!empty.adaptive.any());
        assert!(!render_report(&empty).contains("adaptive censor"));
    }

    /// A traced `span_start`/`span_end` pair, the offline twin of
    /// `span_start_ctx`: `trace` and `parent` ride as ordinary fields.
    fn traced_pair(
        id: u64,
        component: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
        trace: u64,
        parent: Option<u64>,
        ok: bool,
    ) -> Vec<TraceEvent> {
        let mut s = Event::new(start, Level::Debug, component, "t", "span_start")
            .field("span_name", name)
            .field("trace_id", trace)
            .in_span(SpanId(id));
        if let Some(p) = parent {
            s = s.field("parent", p);
        }
        let e = Event::new(end, Level::Info, component, "t", "span_end")
            .field("span_name", name)
            .field("ok", ok)
            .in_span(SpanId(id));
        vec![parse_line(&line(&s)).unwrap(), parse_line(&line(&e)).unwrap()]
    }

    /// The canonical happy path: browser → admission → establish →
    /// attempt → relay, all stitched into one tree whose per-tier
    /// exclusive times sum to exactly the root's PLT.
    #[test]
    fn stitches_cross_tier_trees_and_attributes_exclusively() {
        const T: u64 = 0xfeed;
        let mut evs = Vec::new();
        evs.extend(traced_pair(1, "web", "page_load", 0, 1_000_000, T, None, true));
        evs.extend(traced_pair(2, "web", "tunnel", 10_000, 900_000, T, Some(1), true));
        evs.extend(traced_pair(3, "scholarcloud", "admission", 20_000, 20_000, T, Some(2), true));
        evs.extend(traced_pair(4, "scholarcloud", "establish", 20_000, 400_000, T, Some(2), true));
        evs.extend(traced_pair(5, "scholarcloud", "attempt", 30_000, 400_000, T, Some(4), true));
        evs.extend(traced_pair(6, "scholarcloud", "relay", 250_000, 380_000, T, Some(5), true));
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.trees.len(), 1);
        let tree = a.tree(T).expect("tree by id");
        assert!(tree.completed() && tree.stitched());
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.plt_us, 1_000_000);
        // Depths follow the causal chain.
        let depth_of = |id: u64| tree.spans.iter().find(|s| s.id == id).unwrap().depth;
        assert_eq!(depth_of(1), 0);
        assert_eq!(depth_of(2), 1);
        assert_eq!(depth_of(4), 2);
        assert_eq!(depth_of(5), 3);
        assert_eq!(depth_of(6), 4);
        // Exclusive attribution is a partition of the root's window.
        let excl_sum: u64 = tree.spans.iter().map(|s| s.excl_us).sum();
        assert_eq!(excl_sum, tree.plt_us);
        assert_eq!(tree.tier_us.values().sum::<u64>(), tree.plt_us);
        // The deepest covering span wins each instant: the relay's
        // window belongs to the tunnel tier, not resilience or web.
        assert_eq!(tree.tier_us.get("tunnel"), Some(&130_000));
        assert_eq!(tree.tier_us.get("resilience"), Some(&(370_000 + 10_000 - 130_000)));
        // web = root outside tunnel span + tunnel span instants no one
        // deeper claims.
        assert_eq!(
            tree.tier_us.get("web"),
            Some(&(1_000_000 - 380_000)),
        );
        assert_eq!(a.attribution_coverage(), Some(1.0));
        let wf = render_waterfall(tree);
        assert!(wf.contains("page_load"), "{wf}");
        assert!(wf.contains("relay"), "{wf}");
        assert!(wf.contains("tier blame:"), "{wf}");
        let report = render_report(&a);
        assert!(report.contains("cross-tier attribution"), "{report}");
        assert!(report.contains(&format!("{T:016x}")), "{report}");
    }

    /// Degenerate trees must neither panic nor mis-attribute: orphaned
    /// children re-attach under the root, spans shed before any child
    /// opened still count as stitched, rootless traces attribute
    /// nothing, and spans truncated mid-flight close at trace end.
    #[test]
    fn degenerate_trees_are_handled() {
        // Orphan: parent id 99 never appears.
        let mut evs = Vec::new();
        evs.extend(traced_pair(1, "web", "page_load", 0, 100_000, 7, None, true));
        evs.extend(traced_pair(2, "web", "origin", 10_000, 90_000, 7, Some(99), true));
        let a = analyze(&evs, 1_000_000);
        let tree = a.tree(7).unwrap();
        assert_eq!(tree.orphans, 1);
        assert_eq!(tree.tier_us.get("origin"), Some(&80_000));
        assert_eq!(tree.tier_us.values().sum::<u64>(), tree.plt_us);

        // Shed at admission: root failed, admission span is the only
        // child. The tree stitches but does not count as completed.
        let mut evs = Vec::new();
        evs.extend(traced_pair(1, "web", "page_load", 0, 50_000, 8, None, false));
        evs.extend(traced_pair(2, "scholarcloud", "admission", 10_000, 12_000, 8, Some(1), true));
        let a = analyze(&evs, 1_000_000);
        let tree = a.tree(8).unwrap();
        assert!(tree.stitched() && !tree.completed());
        assert_eq!(a.attribution_coverage(), None, "no completed loads");

        // Rootless: child spans only (the page_load never made it into
        // the trace). No attribution, but a renderable waterfall.
        let mut evs = Vec::new();
        evs.extend(traced_pair(5, "scholarcloud", "attempt", 0, 30_000, 9, Some(77), true));
        let a = analyze(&evs, 1_000_000);
        let tree = a.tree(9).unwrap();
        assert!(tree.root.is_none());
        assert_eq!(tree.plt_us, 0);
        assert!(tree.tier_us.is_empty());
        assert!(render_waterfall(tree).contains("no page_load root"));

        // Truncated mid-flight: a started-but-never-ended child joins
        // unclosed, pinned to trace end, and still attributes.
        let mut evs = Vec::new();
        evs.extend(traced_pair(1, "web", "page_load", 0, 200_000, 11, None, true));
        let s = Event::new(50_000, Level::Debug, "scholarcloud", "t", "span_start")
            .field("span_name", "tunnel_stream")
            .field("trace_id", 11u64)
            .field("parent", 1u64)
            .in_span(SpanId(2));
        evs.push(parse_line(&line(&s)).unwrap());
        let a = analyze(&evs, 1_000_000);
        let tree = a.tree(11).unwrap();
        let cut = tree.spans.iter().find(|s| s.id == 2).unwrap();
        assert!(!cut.closed);
        assert_eq!(cut.end_us, 200_000, "clipped to trace end");
        assert_eq!(tree.tier_us.get("tunnel"), Some(&150_000));
        assert_eq!(tree.tier_us.values().sum::<u64>(), tree.plt_us);
        assert!(render_waterfall(tree).contains("(unclosed)"));

        // A self-parent / cycle must not hang or panic.
        let mut evs = Vec::new();
        evs.extend(traced_pair(1, "web", "page_load", 0, 10_000, 13, None, true));
        evs.extend(traced_pair(2, "x", "a", 1_000, 2_000, 13, Some(3), true));
        evs.extend(traced_pair(3, "x", "b", 1_000, 2_000, 13, Some(2), true));
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.tree(13).unwrap().tier_us.values().sum::<u64>(), 10_000);
    }

    /// Fired alerts carry their exemplar trace ids through the analyzer
    /// and into both renderers.
    #[test]
    fn alert_exemplars_are_parsed_and_rendered() {
        let mut evs = Vec::new();
        evs.extend(span_pair(1, "web", "page_load", 0, 1_000_000));
        evs.push(
            parse_line(&line(
                &Event::new(2_000_000, Level::Warn, "slo", "alert", "fire")
                    .field("slo", "plt-p95".to_string())
                    .field("burn", 2.0)
                    .field("exemplars", "00000000000000ff,0000000000000abc".to_string()),
            ))
            .unwrap(),
        );
        let a = analyze(&evs, 1_000_000);
        assert_eq!(a.alert_exemplars.len(), 1);
        assert_eq!(a.alert_exemplars[0].1, "plt-p95");
        assert_eq!(a.alert_exemplars[0].2, vec![0xff, 0xabc]);
        let report = render_report(&a);
        assert!(report.contains("exemplars plt-p95"), "{report}");
        assert!(report.contains("00000000000000ff"), "{report}");
        let v = parse_json(&render_json(&a)).unwrap();
        let ex = v.get("alert_exemplars").and_then(Json::as_arr).unwrap();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].get("slo").and_then(Json::as_str), Some("plt-p95"));
        let traces = ex[0].get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces[0].as_str(), Some("00000000000000ff"));
    }
}
