//! `scholar-obs`: offline analyzer for `SC_TRACE` JSONL traces.
//!
//! ```text
//! scholar-obs <trace.jsonl> [--window SECS]
//! ```
//!
//! Prints the critical-path decomposition of `page_load` spans, the
//! per-GFW-rule interference timeline, per-component event rates,
//! windowed page-load percentiles, and any SLO alerts recorded in the
//! trace (see `sc_obs::analyze`).
//!
//! Exit codes (used by `scripts/check.sh` as a smoke gate):
//! * `0` — analysis printed;
//! * `1` — usage / IO error;
//! * `2` — trace unparseable or empty;
//! * `3` — trace parsed but carries no closed spans and no events worth
//!   analyzing (empty analysis).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut window_s: u64 = 10;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--window" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()).filter(|v| *v > 0)
                else {
                    eprintln!("scholar-obs: --window expects a positive integer (seconds)");
                    return ExitCode::from(1);
                };
                window_s = v;
            }
            "-h" | "--help" => {
                println!("usage: scholar-obs <trace.jsonl> [--window SECS]");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("scholar-obs: unexpected argument {arg:?}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: scholar-obs <trace.jsonl> [--window SECS]");
        return ExitCode::from(1);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scholar-obs: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let events = match sc_obs::analyze::parse_trace(&text) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("scholar-obs: parse error in {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if events.is_empty() {
        eprintln!("scholar-obs: {path} contains no events");
        return ExitCode::from(2);
    }

    let analysis = sc_obs::analyze::analyze(&events, window_s * 1_000_000);
    if analysis.spans.is_empty() && analysis.rule_timeline.is_empty() {
        eprintln!(
            "scholar-obs: {path} parsed ({} events) but contains no spans or interference \
             events — was the trace captured at Debug level?",
            analysis.events
        );
        return ExitCode::from(3);
    }
    print!("{}", sc_obs::analyze::render_report(&analysis));
    ExitCode::SUCCESS
}
