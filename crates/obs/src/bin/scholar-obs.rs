//! `scholar-obs`: offline analyzer for `SC_TRACE` JSONL traces.
//!
//! ```text
//! scholar-obs <trace.jsonl> [--window SECS] [--json] [--trace ID]
//!             [--require-failover] [--min-availability FRAC]
//!             [--max-shed-rate FRAC] [--min-cache-hit-rate FRAC]
//!             [--min-fleet-availability FRAC]
//!             [--min-attribution-coverage PCT] [--require-exemplars]
//!             [--max-cost-per-load DOLLARS] [--max-detection-rate FRAC]
//!             [--min-availability-under-campaign FRAC]
//! ```
//!
//! Prints the critical-path decomposition of `page_load` spans, the
//! per-GFW-rule interference timeline, per-component event rates,
//! windowed page-load percentiles, injected faults with the resilience
//! reaction (failovers, breaker transitions, availability), the
//! overload-control decision summary, the cross-tier attribution of
//! stitched per-request trace trees, and any SLO alerts (with their
//! exemplar trace ids) recorded in the trace (see `sc_obs::analyze`).
//!
//! `--trace <id>` (16-hex-digit trace id, as printed in the slowest-
//! requests table and on alert exemplars) replaces the report with that
//! one request's cross-tier waterfall: every span of the stitched tree,
//! indented by causal depth, with the exclusive time blamed on each.
//!
//! The gate flags turn the analyzer into a chaos-run assertion:
//! `--require-failover` demands at least one ScholarCloud failover
//! event, `--min-availability 0.9` demands ≥ 90% of finished page loads
//! succeeded, `--max-shed-rate 0.5` demands that at most 50% of
//! admission decisions shed or throttled the request (the flash-crowd
//! smoke gate: overload may brown the service out, not black it out),
//! and `--min-cache-hit-rate 0.5` demands that at least 50% of the
//! domestic proxy's cache-path requests were answered without a full
//! upstream fetch (the shared-cache smoke gate; fails when the trace
//! carries no cache events at all). `--min-fleet-availability 0.8`
//! demands that at least 80% of browser connects to domestic-fleet
//! members succeeded (the fleet-chaos smoke gate: a crashed member may
//! cost the connects that discover it, not sustained availability;
//! fails when the trace carries no fleet connect events at all).
//! `--min-attribution-coverage 95`
//! demands that at least 95% of completed page loads stitched into
//! cross-tier trees (fails when no load completed), and
//! `--require-exemplars` demands that at least one fired SLO alert
//! carried exemplar trace ids. `--max-cost-per-load 0.002` demands
//! that the elastic remote tier's metered cost per *successful* page
//! load stayed at or below 0.002 USD (the elastic-lab smoke gate;
//! fails when the trace carries no elastic cost data or no load
//! succeeded). `--max-detection-rate 0.0` demands that at most 0% of
//! the censor's active probes confirmed a proxy (the arms-race smoke
//! gate: a probe-resistant remote must classify as an innocent web
//! server; fails when the trace carries no probe verdicts at all),
//! and `--min-availability-under-campaign 0.9` demands that at least
//! 90% of page loads finishing after the censor's first probing
//! campaign still succeeded (fails when the trace carries no campaign
//! or no load finished after it).
//!
//! `--json` replaces the human-readable report with the machine
//! summary from [`sc_obs::analyze::render_json`] (schema
//! `scholar-obs/v2`: availability, shed rate, cache hit rate, PLT
//! percentiles, per-tier attribution, alert exemplars) so CI can
//! consume the numbers directly; gates still apply and still decide
//! the exit code.
//!
//! Exit codes (used by `scripts/check.sh` as a smoke gate):
//! * `0` — analysis printed (and any requested gates passed);
//! * `1` — usage / IO error;
//! * `2` — trace unparseable or empty;
//! * `3` — trace parsed but carries no closed spans and no events worth
//!   analyzing (empty analysis), or `--trace` names an unknown id;
//! * `4` — a `--require-failover` / `--min-availability` /
//!   `--max-shed-rate` / `--min-cache-hit-rate` /
//!   `--min-fleet-availability` / `--min-attribution-coverage` /
//!   `--require-exemplars` / `--max-cost-per-load` /
//!   `--max-detection-rate` / `--min-availability-under-campaign`
//!   gate failed.

use std::process::ExitCode;

fn main() -> ExitCode {
    const USAGE: &str = "usage: scholar-obs <trace.jsonl> [--window SECS] [--json] \
                         [--trace ID] [--require-failover] [--min-availability FRAC] \
                         [--max-shed-rate FRAC] [--min-cache-hit-rate FRAC] \
                         [--min-fleet-availability FRAC] \
                         [--min-attribution-coverage PCT] [--require-exemplars] \
                         [--max-cost-per-load DOLLARS] [--max-detection-rate FRAC] \
                         [--min-availability-under-campaign FRAC]";
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut window_s: u64 = 10;
    let mut require_failover = false;
    let mut min_availability: Option<f64> = None;
    let mut max_shed_rate: Option<f64> = None;
    let mut min_cache_hit_rate: Option<f64> = None;
    let mut min_fleet_availability: Option<f64> = None;
    let mut min_attribution_coverage: Option<f64> = None;
    let mut max_cost_per_load: Option<f64> = None;
    let mut max_detection_rate: Option<f64> = None;
    let mut min_availability_under_campaign: Option<f64> = None;
    let mut require_exemplars = false;
    let mut waterfall: Option<u64> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => {
                let Some(id) =
                    args.next().and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
                else {
                    eprintln!("scholar-obs: --trace expects a hex trace id");
                    return ExitCode::from(1);
                };
                waterfall = Some(id);
            }
            "--require-exemplars" => require_exemplars = true,
            "--min-attribution-coverage" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=100.0).contains(v))
                else {
                    eprintln!(
                        "scholar-obs: --min-attribution-coverage expects a percentage in [0, 100]"
                    );
                    return ExitCode::from(1);
                };
                min_attribution_coverage = Some(v);
            }
            "--window" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()).filter(|v| *v > 0)
                else {
                    eprintln!("scholar-obs: --window expects a positive integer (seconds)");
                    return ExitCode::from(1);
                };
                window_s = v;
            }
            "--require-failover" => require_failover = true,
            "--min-availability" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!("scholar-obs: --min-availability expects a fraction in [0, 1]");
                    return ExitCode::from(1);
                };
                min_availability = Some(v);
            }
            "--max-shed-rate" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!("scholar-obs: --max-shed-rate expects a fraction in [0, 1]");
                    return ExitCode::from(1);
                };
                max_shed_rate = Some(v);
            }
            "--min-cache-hit-rate" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!("scholar-obs: --min-cache-hit-rate expects a fraction in [0, 1]");
                    return ExitCode::from(1);
                };
                min_cache_hit_rate = Some(v);
            }
            "--min-fleet-availability" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!(
                        "scholar-obs: --min-fleet-availability expects a fraction in [0, 1]"
                    );
                    return ExitCode::from(1);
                };
                min_fleet_availability = Some(v);
            }
            "--max-cost-per-load" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                else {
                    eprintln!(
                        "scholar-obs: --max-cost-per-load expects a non-negative dollar amount"
                    );
                    return ExitCode::from(1);
                };
                max_cost_per_load = Some(v);
            }
            "--max-detection-rate" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!("scholar-obs: --max-detection-rate expects a fraction in [0, 1]");
                    return ExitCode::from(1);
                };
                max_detection_rate = Some(v);
            }
            "--min-availability-under-campaign" => {
                let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                else {
                    eprintln!(
                        "scholar-obs: --min-availability-under-campaign expects a fraction \
                         in [0, 1]"
                    );
                    return ExitCode::from(1);
                };
                min_availability_under_campaign = Some(v);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("scholar-obs: unexpected argument {arg:?}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scholar-obs: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let events = match sc_obs::analyze::parse_trace(&text) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("scholar-obs: parse error in {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if events.is_empty() {
        eprintln!("scholar-obs: {path} contains no events");
        return ExitCode::from(2);
    }

    let analysis = sc_obs::analyze::analyze(&events, window_s * 1_000_000);
    if analysis.spans.is_empty() && analysis.rule_timeline.is_empty() {
        eprintln!(
            "scholar-obs: {path} parsed ({} events) but contains no spans or interference \
             events — was the trace captured at Debug level?",
            analysis.events
        );
        return ExitCode::from(3);
    }
    if let Some(id) = waterfall {
        match analysis.tree(id) {
            Some(tree) => print!("{}", sc_obs::analyze::render_waterfall(tree)),
            None => {
                eprintln!("scholar-obs: no spans carry trace id {id:016x}");
                return ExitCode::from(3);
            }
        }
    } else if json {
        print!("{}", sc_obs::analyze::render_json(&analysis));
    } else {
        print!("{}", sc_obs::analyze::render_report(&analysis));
    }

    let mut gate_failed = false;
    if require_failover && analysis.failover_times.is_empty() {
        eprintln!("scholar-obs: gate failed — no scholarcloud failover events in trace");
        gate_failed = true;
    }
    if let Some(min) = min_availability {
        match analysis.availability() {
            Some(avail) if avail >= min => {}
            Some(avail) => {
                eprintln!(
                    "scholar-obs: gate failed — availability {:.1}% below required {:.1}%",
                    avail * 100.0,
                    min * 100.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no finished page loads, availability undefined"
                );
                gate_failed = true;
            }
        }
    }
    if let Some(max) = max_shed_rate {
        let rate = analysis.admission.shed_rate();
        if rate > max {
            eprintln!(
                "scholar-obs: gate failed — shed rate {:.1}% above allowed {:.1}%",
                rate * 100.0,
                max * 100.0
            );
            gate_failed = true;
        }
    }
    if let Some(min) = min_cache_hit_rate {
        if !analysis.cache.any() {
            eprintln!("scholar-obs: gate failed — no scholarcloud cache events in trace");
            gate_failed = true;
        } else {
            let rate = analysis.cache.hit_rate();
            if rate < min {
                eprintln!(
                    "scholar-obs: gate failed — cache hit rate {:.1}% below required {:.1}%",
                    rate * 100.0,
                    min * 100.0
                );
                gate_failed = true;
            }
        }
    }
    if let Some(min) = min_fleet_availability {
        match analysis.fleet.availability() {
            Some(avail) if avail >= min => {}
            Some(avail) => {
                eprintln!(
                    "scholar-obs: gate failed — fleet availability {:.1}% below \
                     required {:.1}%",
                    avail * 100.0,
                    min * 100.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no fleet connect events in trace, \
                     fleet availability undefined"
                );
                gate_failed = true;
            }
        }
    }
    if let Some(min_pct) = min_attribution_coverage {
        match analysis.attribution_coverage() {
            Some(cov) if cov * 100.0 >= min_pct => {}
            Some(cov) => {
                eprintln!(
                    "scholar-obs: gate failed — attribution coverage {:.1}% below \
                     required {min_pct:.1}% (completed loads not stitching across tiers)",
                    cov * 100.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no completed page loads, attribution \
                     coverage undefined"
                );
                gate_failed = true;
            }
        }
    }
    if let Some(max_dollars) = max_cost_per_load {
        match analysis.cost_per_ok_load_micro() {
            Some(micro) if micro / 1_000_000.0 <= max_dollars => {}
            Some(micro) => {
                eprintln!(
                    "scholar-obs: gate failed — cost per successful load {:.6} USD above \
                     allowed {max_dollars:.6} USD",
                    micro / 1_000_000.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no elastic cost data (or no successful \
                     loads), cost per load undefined"
                );
                gate_failed = true;
            }
        }
    }
    if let Some(max) = max_detection_rate {
        match analysis.adaptive.detection_rate() {
            Some(rate) if rate <= max => {}
            Some(rate) => {
                eprintln!(
                    "scholar-obs: gate failed — probe detection rate {:.1}% above \
                     allowed {:.1}% (active probes are confirming the proxy)",
                    rate * 100.0,
                    max * 100.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no active probes in trace, detection \
                     rate undefined"
                );
                gate_failed = true;
            }
        }
    }
    if let Some(min) = min_availability_under_campaign {
        match analysis.availability_under_campaign() {
            Some(avail) if avail >= min => {}
            Some(avail) => {
                eprintln!(
                    "scholar-obs: gate failed — availability under campaign {:.1}% below \
                     required {:.1}%",
                    avail * 100.0,
                    min * 100.0
                );
                gate_failed = true;
            }
            None => {
                eprintln!(
                    "scholar-obs: gate failed — no probing campaign in trace (or no load \
                     finished after it), availability under campaign undefined"
                );
                gate_failed = true;
            }
        }
    }
    if require_exemplars && analysis.alert_exemplars.is_empty() {
        eprintln!("scholar-obs: gate failed — no fired SLO alert carries exemplar trace ids");
        gate_failed = true;
    }
    if gate_failed {
        return ExitCode::from(4);
    }
    ExitCode::SUCCESS
}
