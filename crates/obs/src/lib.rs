//! `sc-obs`: zero-dependency observability for the ScholarCloud
//! reproduction.
//!
//! The paper's contribution is *measurement* — packet-loss rates,
//! page-load times, per-method overhead — so the reproduction needs to
//! explain not just *what* a scenario measured but *why*: which GFW
//! rule killed a flow, where a page load spent its time, how deep a
//! bottleneck queue ran. This crate provides that layer, std-only (the
//! build environment is fully offline), with three pieces:
//!
//! 1. **Structured tracing** ([`Event`], [`span_start`]/[`span_end`])
//!    keyed to **simulation time**: every record carries `t_us`,
//!    microseconds of `sc-simnet` clock, never wall clock. Events are
//!    addressed `component → target → name` (see [`event`]) and
//!    filtered per component by [`Level`].
//! 2. **Metrics** ([`Registry`]): saturating [`Counter`]s, [`Gauge`]s,
//!    and HDR-style log-bucketed [`Histogram`]s with p50/p95/p99.
//! 3. **Sinks** ([`RingSink`] for tests, [`JsonlSink`] for offline
//!    analysis, [`Registry::render_summary`] for human-readable
//!    reports via `sc-metrics`).
//!
//! A fourth piece stands apart: [`prof`] is a **wall-clock**
//! self-profiler (per-subsystem scoped timers plus allocation
//! accounting) for the `scholar-bench` performance harness. It is off
//! by default and guaranteed never to perturb sim-time traces.
//!
//! # Usage
//!
//! A run installs a [`Dispatcher`] into a thread-local slot and keeps
//! the RAII guard alive for the duration; instrumented code anywhere
//! below calls the free functions, which no-op when nothing is
//! installed (the un-instrumented fast path is a thread-local read):
//!
//! ```
//! use sc_obs::{Dispatcher, Event, Level, RingSink};
//!
//! let ring = RingSink::with_capacity(1024);
//! let handle = ring.handle();
//! let guard = Dispatcher::new()
//!     .with_level(Level::Debug)
//!     .with_sink(Box::new(ring))
//!     .install();
//!
//! // ... deep inside instrumented code, with no handle in scope:
//! sc_obs::emit(
//!     Event::new(1_500, Level::Info, "gfw", "verdict", "drop").field("rule", "gfw-sni"),
//! );
//! sc_obs::counter_add("gfw.drops", 1);
//!
//! let registry = guard.uninstall().into_registry();
//! assert_eq!(registry.counter("gfw.drops"), 1);
//! assert_eq!(handle.count_named("gfw", "drop"), 1);
//! ```
//!
//! # Determinism
//!
//! Traces of the same seeded scenario are **byte-identical**: sim-time
//! timestamps, sequential span ids, insertion-ordered fields,
//! `BTreeMap`-ordered registries, and a hand-rolled JSON writer with a
//! fixed key order leave no room for wall-clock or hash-order noise.
//! `tests/obs_determinism.rs` in the workspace root enforces this.

#![warn(missing_docs)]

pub mod analyze;
pub mod context;
pub mod dispatch;
pub mod event;
pub mod metrics;
pub mod prof;
pub mod sink;
pub mod slo;
pub mod timeseries;

pub use context::{TraceCtx, TraceId, TRACE_HEADER};
pub use dispatch::{
    counter_add, emit, gauge_add, gauge_set, is_active, is_enabled, observe, span_end, span_start,
    span_start_ctx, tick, ts_bump, ts_bump_ex, ts_record, ts_record_ex, with_registry,
    with_slo_engine, with_timeseries, Dispatcher, ObsGuard,
};
pub use event::{Event, Level, SpanId, Value};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use sink::{write_event_json, JsonlSink, RingHandle, RingSink, Sink};
pub use slo::{Objective, SloEngine, SloSpec, SloStatus};
pub use timeseries::{SeriesKind, TimeSeries, Window, WindowSpec};
