//! Wall-clock self-profiler: where does the *simulator itself* spend
//! its cycles?
//!
//! Everything else in `sc-obs` is keyed to **simulation time** and
//! feeds the scientific record of a run. This module is the opposite:
//! it measures **wall-clock** cost per subsystem (event loop, TCP
//! engine, GFW classification, proxy/admission, shared cache) so the
//! `scholar-bench` harness can attribute a run's real-world cost and
//! the BENCH_*.json trajectory can prove that hot-path rebuilds
//! actually got faster.
//!
//! # Design constraints
//!
//! 1. **Strictly off by default.** The disabled path of [`scope`] is a
//!    thread-local flag read and a branch — no `Instant::now()` call,
//!    no allocation, nothing observable. Production scenarios and the
//!    determinism tests run with the profiler off and must pay nothing.
//! 2. **Never perturbs the simulation.** The profiler reads the wall
//!    clock but is *write-only* from the simulator's perspective: no
//!    simulator decision, RNG draw, or obs event depends on it, so
//!    `SC_TRACE` output is byte-identical with the profiler on or off
//!    (`tests/obs_trace_determinism.rs` pins this).
//! 3. **Exclusive (self) time.** Nested scopes pause their parent:
//!    entering [`Subsystem::Tcp`] inside [`Subsystem::EventLoop`]
//!    charges the TCP segment to TCP only. The per-subsystem numbers
//!    therefore sum to ≤ total wall time and never double count.
//!
//! Scope guards tolerate misuse: dropping a parent guard before a
//! still-live child closes the child's frame too (attributing its time
//! correctly), and the orphaned child guard's later drop is a no-op.
//!
//! # Allocation accounting
//!
//! [`CountingAlloc`] is a `GlobalAlloc` wrapper around the system
//! allocator that counts bytes allocated and tracks the in-use
//! high-water mark. It is **not** installed by this crate — a harness
//! binary (e.g. `scholar-bench`) opts in with
//! `#[global_allocator]`, keeping ordinary builds on the untouched
//! system allocator.
//!
//! ```
//! use sc_obs::prof::{self, Subsystem};
//!
//! prof::reset();
//! prof::set_enabled(true);
//! {
//!     let _outer = prof::scope(Subsystem::EventLoop);
//!     {
//!         let _inner = prof::scope(Subsystem::Tcp); // pauses EventLoop
//!     }
//! }
//! prof::set_enabled(false);
//! let report = prof::report();
//! assert_eq!(report.scopes(Subsystem::EventLoop), 1);
//! assert_eq!(report.scopes(Subsystem::Tcp), 1);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented subsystems, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// `sc-simnet`'s event loop: dequeue, dispatch, app callbacks —
    /// everything not claimed by a nested scope.
    EventLoop,
    /// The TCP engine (segment processing and retransmit timers).
    Tcp,
    /// GFW middlebox classification of transit packets.
    GfwClassify,
    /// The domestic proxy: tunnel handling, admission, resilience.
    Proxy,
    /// The shared content cache on the proxy's gateway path.
    Cache,
}

impl Subsystem {
    /// Number of subsystems (array sizing).
    pub const COUNT: usize = 5;

    /// All subsystems, in report order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::EventLoop,
        Subsystem::Tcp,
        Subsystem::GfwClassify,
        Subsystem::Proxy,
        Subsystem::Cache,
    ];

    /// Stable snake_case name used in BENCH_*.json.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::EventLoop => "event_loop",
            Subsystem::Tcp => "tcp",
            Subsystem::GfwClassify => "gfw_classify",
            Subsystem::Proxy => "proxy",
            Subsystem::Cache => "cache",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

#[derive(Default)]
struct ProfState {
    /// Exclusive wall nanoseconds per subsystem.
    self_ns: [u64; Subsystem::COUNT],
    /// Scopes entered per subsystem.
    scopes: [u64; Subsystem::COUNT],
    /// Open frames: `(subsystem, current segment start)`. The top
    /// frame's segment is live; deeper frames are paused.
    stack: Vec<(usize, Instant)>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// Turns the profiler on or off for this thread. Off is the default;
/// [`scope`] is a flag-read-and-branch while off.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether the profiler is currently collecting on this thread.
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Clears all accumulated numbers and any open frames (call between
/// benchmark scenarios).
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = ProfState::default());
}

/// Opens a scoped timer attributing exclusive wall time to `sub` until
/// the returned guard drops. Cheap no-op while the profiler is off.
#[inline]
pub fn scope(sub: Subsystem) -> ScopeGuard {
    if !ENABLED.with(|e| e.get()) {
        return ScopeGuard { depth: usize::MAX };
    }
    let now = Instant::now();
    let depth = STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.scopes[sub.idx()] += 1;
        // Pause the parent: bank its live segment up to now.
        if let Some((parent, seg_start)) = st.stack.last_mut() {
            let parent = *parent;
            let elapsed = now.duration_since(*seg_start).as_nanos() as u64;
            *seg_start = now;
            st.self_ns[parent] += elapsed;
        }
        st.stack.push((sub.idx(), now));
        st.stack.len()
    });
    ScopeGuard { depth }
}

/// RAII guard from [`scope`]; dropping it banks the subsystem's live
/// segment and resumes the parent frame.
#[must_use = "dropping the guard immediately measures nothing"]
pub struct ScopeGuard {
    /// Stack depth of this frame (1-based); `usize::MAX` marks the
    /// inert guard handed out while the profiler is off.
    depth: usize,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.depth == usize::MAX {
            return;
        }
        let now = Instant::now();
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            // Misuse tolerance: if an out-of-order parent drop already
            // closed this frame, the stack is shorter than our depth —
            // nothing left to do. Otherwise close every frame above us
            // (orphaned children) and then our own, attributing each
            // banked segment to its own subsystem.
            while st.stack.len() >= self.depth {
                let (sub, seg_start) = st.stack.pop().expect("len checked");
                let elapsed = now.duration_since(seg_start).as_nanos() as u64;
                st.self_ns[sub] += elapsed;
            }
            // Resume the parent frame's segment from now.
            if let Some((_, seg_start)) = st.stack.last_mut() {
                *seg_start = now;
            }
        });
    }
}

/// Immutable snapshot of the profiler's accumulated numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfReport {
    self_ns: [u64; Subsystem::COUNT],
    scopes: [u64; Subsystem::COUNT],
}

impl ProfReport {
    /// Exclusive wall nanoseconds attributed to `sub`.
    pub fn self_ns(&self, sub: Subsystem) -> u64 {
        self.self_ns[sub.idx()]
    }

    /// Scopes entered for `sub`.
    pub fn scopes(&self, sub: Subsystem) -> u64 {
        self.scopes[sub.idx()]
    }

    /// Sum of exclusive time across all subsystems (ns). Because
    /// attribution is exclusive, this never exceeds real wall time.
    pub fn total_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }

    /// `(subsystem, self_ns, scopes)` rows in report order.
    pub fn rows(&self) -> impl Iterator<Item = (Subsystem, u64, u64)> + '_ {
        Subsystem::ALL
            .iter()
            .map(|&s| (s, self.self_ns[s.idx()], self.scopes[s.idx()]))
    }

    /// Whether any scope was recorded at all.
    pub fn any(&self) -> bool {
        self.scopes.iter().any(|&n| n > 0)
    }
}

/// Snapshot of the numbers accumulated since the last [`reset`]. Open
/// frames contribute their banked segments only (the live segment up to
/// the last pause), so calling this mid-scope undercounts the open
/// frame rather than double counting.
pub fn report() -> ProfReport {
    STATE.with(|s| {
        let st = s.borrow();
        ProfReport { self_ns: st.self_ns, scopes: st.scopes }
    })
}

// ---------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Install it from a
/// harness binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: sc_obs::prof::CountingAlloc = sc_obs::prof::CountingAlloc;
/// ```
///
/// Counters use relaxed atomics: totals are exact, and the peak is
/// exact for single-threaded harnesses (the simulator is
/// single-threaded by design).
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the bookkeeping performs no
// allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        IN_USE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            IN_USE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            record_alloc(new_size as u64);
        }
        p
    }
}

fn record_alloc(size: u64) {
    ALLOCATED.fetch_add(size, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let in_use = IN_USE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(in_use, Ordering::Relaxed);
}

/// Snapshot of the [`CountingAlloc`] counters. All zeros unless a
/// harness installed the allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes ever allocated (monotonic).
    pub allocated_bytes: u64,
    /// Total allocation calls (monotonic; reallocs count once).
    pub allocations: u64,
    /// Bytes currently live.
    pub in_use_bytes: u64,
    /// High-water mark of live bytes since the last
    /// [`reset_alloc_peak`].
    pub peak_bytes: u64,
}

/// Reads the allocation counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocated_bytes: ALLOCATED.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        in_use_bytes: IN_USE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// Rebases the peak to the current in-use level, so per-scenario peaks
/// measure the scenario rather than harness startup.
pub fn reset_alloc_peak() {
    PEAK.store(IN_USE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes prof tests within this binary: state is thread-local
    /// but the test harness may reuse threads.
    fn fresh() {
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_by_default_and_inert() {
        fresh();
        assert!(!is_enabled());
        {
            let _g = scope(Subsystem::Tcp);
            let _h = scope(Subsystem::Cache);
        }
        let r = report();
        assert!(!r.any());
        assert_eq!(r.total_ns(), 0);
    }

    #[test]
    fn nested_scopes_attribute_exclusive_time() {
        fresh();
        set_enabled(true);
        {
            let _outer = scope(Subsystem::EventLoop);
            spin(200);
            {
                let _inner = scope(Subsystem::Tcp);
                spin(200);
            }
            spin(200);
        }
        set_enabled(false);
        let r = report();
        assert_eq!(r.scopes(Subsystem::EventLoop), 1);
        assert_eq!(r.scopes(Subsystem::Tcp), 1);
        assert!(r.self_ns(Subsystem::EventLoop) > 0);
        assert!(r.self_ns(Subsystem::Tcp) > 0);
        // Exclusive attribution: both banked something, and the total is
        // the sum of disjoint segments.
        assert_eq!(
            r.total_ns(),
            r.self_ns(Subsystem::EventLoop) + r.self_ns(Subsystem::Tcp)
        );
    }

    #[test]
    fn reentrant_same_subsystem_counts_each_scope() {
        fresh();
        set_enabled(true);
        {
            let _a = scope(Subsystem::Proxy);
            let _b = scope(Subsystem::Proxy);
        }
        set_enabled(false);
        assert_eq!(report().scopes(Subsystem::Proxy), 2);
    }

    #[test]
    fn out_of_order_drop_is_tolerated() {
        fresh();
        set_enabled(true);
        let outer = scope(Subsystem::EventLoop);
        let inner = scope(Subsystem::Cache);
        spin(200);
        // Parent dropped first: closes the child frame too.
        drop(outer);
        let mid = report();
        assert_eq!(mid.scopes(Subsystem::Cache), 1);
        assert!(mid.self_ns(Subsystem::Cache) > 0);
        let banked = mid.total_ns();
        // The orphaned child guard's drop must be a no-op.
        drop(inner);
        set_enabled(false);
        assert_eq!(report().total_ns(), banked);
    }

    #[test]
    fn enabling_mid_run_only_counts_from_then_on() {
        fresh();
        let pre = scope(Subsystem::Tcp); // off: inert guard
        set_enabled(true);
        {
            let _g = scope(Subsystem::Cache);
        }
        drop(pre); // inert guard drop must not touch live state
        set_enabled(false);
        let r = report();
        assert_eq!(r.scopes(Subsystem::Tcp), 0);
        assert_eq!(r.scopes(Subsystem::Cache), 1);
    }

    #[test]
    fn reset_clears_everything() {
        fresh();
        set_enabled(true);
        {
            let _g = scope(Subsystem::GfwClassify);
        }
        reset();
        set_enabled(false);
        assert!(!report().any());
    }

    #[test]
    fn subsystem_names_are_stable() {
        let names: Vec<&str> = Subsystem::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["event_loop", "tcp", "gfw_classify", "proxy", "cache"]);
    }

    /// Burns a little wall time without sleeping (keeps tests fast and
    /// monotonic-clock friendly).
    fn spin(iters: u64) {
        let mut x = 0u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
    }
}
