//! Metrics: counters, gauges, and log-bucketed histograms.
//!
//! A [`Registry`] owns every metric, keyed by a dotted name
//! (`"simnet.packets_sent"`). Iteration order is the `BTreeMap` key
//! order, so rendered summaries and exports are deterministic.
//!
//! [`Histogram`] uses HDR-style logarithmic bucketing: values below
//! 2^[`SUB_BITS`] are recorded exactly; above that, each power-of-two
//! octave is split into 2^[`SUB_BITS`] sub-buckets, bounding relative
//! quantile error at `1 / 2^SUB_BITS` (≈ 3% with the default of 5 bits)
//! while keeping the bucket array a few hundred entries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;

const SUB: usize = 1 << SUB_BITS;

/// A monotonically increasing count. Saturates at `u64::MAX` instead of
/// wrapping or panicking, so a runaway counter can never corrupt a
/// report or abort a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `by`, saturating at `u64::MAX`.
    pub fn add(&mut self, by: u64) {
        self.0 = self.0.saturating_add(by);
    }

    /// Adds one, saturating.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A value that can go up and down (queue depths, open tunnels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge(i64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&mut self, v: i64) {
        self.0 = v;
    }

    /// Adds `by` (may be negative), saturating at the `i64` extremes.
    pub fn add(&mut self, by: i64) {
        self.0 = self.0.saturating_add(by);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0
    }
}

/// Index of the bucket covering `v` (shared with the windowed
/// time-series' sparse per-window histograms).
pub(crate) fn bucket_of(v: u64) -> usize {
    let top = 64 - v.leading_zeros() as usize;
    if top <= SUB_BITS as usize + 1 {
        // v < 2 * SUB: exact buckets.
        return v as usize;
    }
    let shift = top - 1 - SUB_BITS as usize;
    let mantissa = (v >> shift) as usize; // in [SUB, 2*SUB)
    shift * SUB + mantissa
}

/// Lowest value falling in bucket `idx` (inverse of [`bucket_of`]).
pub(crate) fn bucket_lo(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return idx as u64;
    }
    let shift = idx / SUB - 1;
    let mantissa = SUB + idx % SUB;
    (mantissa as u64) << shift
}

/// Width of bucket `idx` in value space.
pub(crate) fn bucket_width(idx: usize) -> u64 {
    if idx < 2 * SUB {
        1
    } else {
        1u64 << (idx / SUB - 1)
    }
}

const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Log-bucketed histogram of `u64` samples (latencies in µs, sizes in
/// bytes).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, estimated from buckets.
    ///
    /// The estimate is the midpoint of the bucket containing the target
    /// rank, clamped into the observed `[min, max]` range; relative
    /// error is bounded by the sub-bucket resolution. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let mid = bucket_lo(idx) + (bucket_width(idx) - 1) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p95 shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

/// Central store of named metrics with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `by` to the named counter, creating it on first use.
    pub fn counter_add(&mut self, name: &str, by: u64) {
        self.counters.entry(name.to_string()).or_default().add(by);
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Sets the named gauge, creating it on first use.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.entry(name.to_string()).or_default().set(v);
    }

    /// Adds `by` (may be negative) to the named gauge.
    pub fn gauge_add(&mut self, name: &str, by: i64) {
        self.gauges.entry(name.to_string()).or_default().add(by);
    }

    /// Reads a gauge (0 when never touched).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).map_or(0, Gauge::get)
    }

    /// Records a sample into the named histogram, creating it on first
    /// use.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Reads a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a human-readable summary, deterministic for a given
    /// registry state. This is the text block `sc-metrics::report`
    /// embeds in scenario reports.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in self.counters() {
                let _ = writeln!(out, "  {name:<42} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in self.gauges() {
                let _ = writeln!(out, "  {name:<42} {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs or bytes):\n");
            for (name, h) in self.histograms() {
                let _ = writeln!(
                    out,
                    "  {name:<42} n={} min={} p50={} p95={} p99={} max={} mean={:.1}",
                    h.count(),
                    h.min(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max(),
                    h.mean(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc(); // would wrap to 0 with wrapping arithmetic
        assert_eq!(c.get(), u64::MAX);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_saturates_both_directions() {
        let mut g = Gauge::default();
        g.add(i64::MAX);
        g.add(1);
        assert_eq!(g.get(), i64::MAX);
        g.set(i64::MIN);
        g.add(-1);
        assert_eq!(g.get(), i64::MIN);
    }

    #[test]
    fn buckets_are_contiguous_and_invertible() {
        // Every value maps into a bucket whose [lo, lo+width) contains it,
        // and bucket indices are monotonically non-decreasing in v.
        let mut prev_idx = 0;
        for v in (0..4096u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_of(v);
            assert!(idx >= prev_idx || v < 4096, "non-monotonic at {v}");
            prev_idx = idx.max(prev_idx);
            let lo = bucket_lo(idx);
            let w = bucket_width(idx);
            assert!(
                v >= lo && v - lo < w,
                "v={v} idx={idx} lo={lo} width={w}"
            );
            assert!(idx < BUCKETS, "idx {idx} out of range for v={v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..=40u64 {
            h.observe(v);
        }
        // Values below 2*SUB (64) are bucketed exactly: the median of
        // 0..=40 is 20 precisely.
        assert_eq!(h.quantile(0.5), 20);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 40);
        assert_eq!(h.count(), 41);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.observe(v);
        }
        for (q, exact) in [(0.50, 50_000.0), (0.95, 95_000.0), (0.99, 99_000.0)] {
            let est = h.quantile(q) as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.04, "q={q}: est={est} exact={exact} rel={rel}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0) , h.max());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.9) > u64::MAX / 2);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0, including the boundaries.
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);

        // Single sample: every quantile is that sample.
        let mut h = Histogram::new();
        h.observe(1234);
        for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 1234, "q={q}");
        }

        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-3.0), 1234);
        assert_eq!(h.quantile(7.5), 1234);
        assert_eq!(h.quantile(f64::NAN), 1234); // NaN degrades to rank 1

        // q=0.0 targets rank 1 (the minimum's bucket), q=1.0 the max.
        let mut h = Histogram::new();
        h.observe(10);
        h.observe(1_000_000);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // Values exactly on power-of-two bucket edges: the estimate must
        // stay within the clamped [min, max] range and within one
        // sub-bucket of the true value.
        for v in [1u64, 31, 32, 33, 63, 64, 1 << 20, (1 << 20) + 1] {
            let mut h = Histogram::new();
            for _ in 0..100 {
                h.observe(v);
            }
            let est = h.quantile(0.5);
            assert_eq!(est, v, "all-equal samples must report exactly v={v}");
        }
        // Two adjacent boundary values: p50 lands on the lower one.
        let mut h = Histogram::new();
        h.observe(64);
        h.observe(65);
        let p50 = h.quantile(0.5);
        assert!((64..=65).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 65);
    }

    #[test]
    fn registry_orders_names_and_renders() {
        let mut r = Registry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.gauge_set("queue.depth", -3);
        r.observe("latency_us", 100);
        r.observe("latency_us", 200);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        let text = r.render_summary();
        assert!(text.contains("a.first"));
        assert!(text.contains("queue.depth"));
        assert!(text.contains("latency_us"));
        assert!(text.contains("n=2"));
    }
}
