//! Structured events: the unit of tracing.
//!
//! An [`Event`] is keyed to **simulation time** (microseconds since sim
//! start, as produced by `sc-simnet`'s clock) — never wall clock — so a
//! trace of a seeded run is fully deterministic and replayable. Events
//! are addressed by a three-level taxonomy:
//!
//! * **component** — the emitting crate (`"simnet"`, `"gfw"`,
//!   `"scholarcloud"`, `"tunnels"`, `"web"`, `"metrics"`),
//! * **target** — the subsystem inside it (`"packet"`, `"verdict"`,
//!   `"tunnel"`, `"load"`, …),
//! * **name** — what happened (`"drop"`, `"rst_injected"`,
//!   `"auth_fail"`, …).

use std::fmt;

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Per-packet / per-byte chatter.
    Trace,
    /// Per-flow decisions worth seeing when digging in.
    Debug,
    /// Milestones: tunnels opening, loads finishing, rules firing.
    Info,
    /// Unexpected but survivable conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// Lower-case name used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Borrowed static string (labels, rule names).
    Str(&'static str),
    /// Owned string (addresses, hostnames).
    String(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u8> for Value {
    fn from(v: u8) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Value {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Identifier of a span within one dispatcher's lifetime.
///
/// Span ids are allocated sequentially by the dispatcher, so traces of
/// the same seeded run are byte-identical. Id `0` is reserved for "no
/// dispatcher installed" and is silently ignored by
/// [`span_end`](crate::span_end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span, used when tracing is disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time in microseconds since sim start.
    pub t_us: u64,
    /// Severity.
    pub level: Level,
    /// Emitting crate (`"simnet"`, `"gfw"`, …).
    pub component: &'static str,
    /// Subsystem within the component (`"packet"`, `"verdict"`, …).
    pub target: &'static str,
    /// What happened (`"drop"`, `"rst_injected"`, …).
    pub name: &'static str,
    /// Enclosing span, if any.
    pub span: SpanId,
    /// Ordered key/value payload; order is preserved in exports.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Starts building an event at simulation time `t_us`.
    pub fn new(
        t_us: u64,
        level: Level,
        component: &'static str,
        target: &'static str,
        name: &'static str,
    ) -> Event {
        Event { t_us, level, component, target, name, span: SpanId::NONE, fields: Vec::new() }
    }

    /// Attaches a field (builder style; order is preserved).
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Associates the event with a span.
    pub fn in_span(mut self, span: SpanId) -> Event {
        self.span = span;
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Convenience: field value as `u64` if present and unsigned.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: field value as a string slice if present and textual.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            Some(Value::String(s)) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn builder_preserves_field_order_and_lookup() {
        let ev = Event::new(42, Level::Info, "gfw", "verdict", "drop")
            .field("rule", "gfw-sni")
            .field("bytes", 1500u64);
        assert_eq!(ev.fields[0].0, "rule");
        assert_eq!(ev.fields[1].0, "bytes");
        assert_eq!(ev.get_str("rule"), Some("gfw-sni"));
        assert_eq!(ev.get_u64("bytes"), Some(1500));
        assert_eq!(ev.get("missing"), None);
    }
}
