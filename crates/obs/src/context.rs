//! Causal trace context: deterministic trace identifiers and their
//! in-band wire encoding.
//!
//! A [`TraceId`] is minted once per browser page load and carried
//! through every hop of the request path — the `Sc-Trace` header on
//! plain-HTTP/gateway/CONNECT requests, and two fixed fields on the
//! tunnel [`StreamHeader`](../../sc_core/frame) — so that every
//! subsystem can emit spans *parented* into the originating request's
//! tree. Stitching happens offline in [`analyze`](crate::analyze).
//!
//! # Determinism
//!
//! Ids are **not** random: they are an FNV-1a hash of the minting
//! browser's seeded entropy and the load index. The same seeded
//! scenario therefore mints the same ids in the same order, keeping
//! traced runs byte-identical, while distinct (client, load) pairs get
//! distinct, well-mixed 64-bit ids.
//!
//! # Zero-cost propagation
//!
//! The wire encoding is **fixed width** (`<16 hex>-<16 hex>`, 33
//! bytes): when no sink is attached every span id is
//! [`SpanId::NONE`](crate::SpanId::NONE) and the header still encodes —
//! as `…-0000000000000000` — so packet sizes, and with them the entire
//! simulated packet schedule, are identical whether tracing is enabled
//! or not. Minting is a 16-byte hash; no allocation happens until the
//! header string is built, which request construction does anyway.

use crate::event::SpanId;

/// The header that carries trace context on simulated HTTP requests
/// (browser → domestic proxy → origin).
pub const TRACE_HEADER: &str = "Sc-Trace";

/// Identifier of one end-to-end traced request (a browser page load).
///
/// `0` is reserved for "no trace" and never minted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is the null trace.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Mints the deterministic trace id for load number `load` of the
    /// browser seeded with `entropy`: FNV-1a over both values. Never
    /// returns [`TraceId::NONE`].
    pub fn mint(entropy: u64, load: u64) -> TraceId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: [u8; 8]| {
            for b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(entropy.to_le_bytes());
        eat(load.to_le_bytes());
        TraceId(h.max(1))
    }
}

/// A propagated trace context: which request this work belongs to
/// ([`TraceId`]) and which span caused it (`parent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The end-to-end request id.
    pub trace: TraceId,
    /// The causing span on the upstream tier ([`SpanId::NONE`] for
    /// roots or when tracing is disabled).
    pub parent: SpanId,
}

impl TraceCtx {
    /// The empty context (no trace, no parent).
    pub const NONE: TraceCtx = TraceCtx { trace: TraceId::NONE, parent: SpanId::NONE };

    /// Builds a context.
    pub fn new(trace: TraceId, parent: SpanId) -> TraceCtx {
        TraceCtx { trace, parent }
    }

    /// Whether the context carries no trace at all.
    pub fn is_none(self) -> bool {
        self.trace.is_none()
    }

    /// This context re-parented on `parent` (same trace).
    pub fn with_parent(self, parent: SpanId) -> TraceCtx {
        TraceCtx { trace: self.trace, parent }
    }

    /// The fixed-width wire form: `<16-hex trace>-<16-hex parent>`,
    /// always exactly 33 bytes so traced and untraced runs put the same
    /// number of bytes on the wire.
    pub fn header_value(self) -> String {
        format!("{:016x}-{:016x}", self.trace.0, self.parent.0)
    }

    /// Parses the wire form produced by [`header_value`]
    /// (`Self::header_value`). Returns `None` on any malformation —
    /// degenerate inputs must never panic a relay.
    pub fn parse(s: &str) -> Option<TraceCtx> {
        let s = s.trim();
        if s.len() != 33 || s.as_bytes()[16] != b'-' {
            return None;
        }
        let trace = u64::from_str_radix(&s[..16], 16).ok()?;
        let parent = u64::from_str_radix(&s[17..], 16).ok()?;
        Some(TraceCtx { trace: TraceId(trace), parent: SpanId(parent) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minting_is_deterministic_and_distinct() {
        let a = TraceId::mint(7, 0);
        assert_eq!(a, TraceId::mint(7, 0));
        assert_ne!(a, TraceId::mint(7, 1));
        assert_ne!(a, TraceId::mint(8, 0));
        assert!(!a.is_none());
    }

    #[test]
    fn header_roundtrip_is_fixed_width() {
        let ctx = TraceCtx::new(TraceId(0xdead_beef), SpanId(42));
        let v = ctx.header_value();
        assert_eq!(v.len(), 33);
        assert_eq!(TraceCtx::parse(&v), Some(ctx));
        // Disabled tracing still encodes at the same width.
        let off = TraceCtx::new(TraceId::mint(1, 2), SpanId::NONE);
        assert_eq!(off.header_value().len(), 33);
    }

    #[test]
    fn parse_rejects_malformed_values() {
        assert_eq!(TraceCtx::parse(""), None);
        assert_eq!(TraceCtx::parse("abc"), None);
        assert_eq!(TraceCtx::parse(&"0".repeat(33)), None);
        assert_eq!(TraceCtx::parse(&format!("{}-{}", "z".repeat(16), "0".repeat(16))), None);
        assert_eq!(TraceCtx::parse(&format!("{}+{}", "0".repeat(16), "0".repeat(16))), None);
    }
}
