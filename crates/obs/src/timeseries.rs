//! Windowed time-series: bounded-memory aggregation of observations
//! into fixed simulation-time windows.
//!
//! A flat end-of-run counter dump answers *what* a scenario measured; an
//! operator of the paper's deployed service (§3, §4.5) needs *when* —
//! when page-load latency crossed its SLO, when censor interference
//! clustered, when the load ramp saturated the VM. [`TimeSeries`]
//! aggregates two kinds of series into windows of fixed width
//! ([`WindowSpec`]):
//!
//! * **sample series** ([`TimeSeries::record`]) — latency-style
//!   observations; each window keeps count/sum/min/max plus a *sparse*
//!   log-bucketed histogram (same bucketing as
//!   [`Histogram`](crate::Histogram), ≈3% relative quantile error), so
//!   per-window p50/p95/p99 come out without storing samples;
//! * **rate series** ([`TimeSeries::bump`]) — counter-style increments;
//!   each window keeps the increment total, rendered as a per-second
//!   rate.
//!
//! Memory is bounded two ways: windows are materialized only when
//! something lands in them (gaps cost nothing), and each series keeps at
//! most [`WindowSpec::max_windows`] windows — the oldest are evicted and
//! counted in [`TimeSeries::evicted`]. Everything is keyed to
//! simulation time, iterated in `BTreeMap` order, and rendered with
//! fixed formatting, so timelines of a seeded run are deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::metrics::{bucket_lo, bucket_of, bucket_width};

/// Window geometry and the memory bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width in simulation microseconds.
    pub width_us: u64,
    /// Maximum materialized windows kept per series (oldest evicted).
    pub max_windows: usize,
}

impl WindowSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `width_us` or `max_windows` is zero.
    pub fn new(width_us: u64, max_windows: usize) -> WindowSpec {
        assert!(width_us > 0, "window width must be positive");
        assert!(max_windows > 0, "max_windows must be positive");
        WindowSpec { width_us, max_windows }
    }

    /// A spec with `secs`-second windows and the default memory bound.
    pub fn seconds(secs: u64) -> WindowSpec {
        WindowSpec::new(secs.max(1) * 1_000_000, 512)
    }
}

impl Default for WindowSpec {
    /// One-second windows, 512 kept per series.
    fn default() -> WindowSpec {
        WindowSpec::new(1_000_000, 512)
    }
}

/// What a series aggregates, fixed by the first call that touches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Latency-style samples with per-window quantiles.
    Sample,
    /// Counter-style increments with per-window rates.
    Rate,
}

/// Worst-K exemplars kept per window: enough to link an alert to
/// evidence without unbounded growth in hot windows.
pub const EXEMPLARS_PER_WINDOW: usize = 4;

/// One window's aggregate state.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window index: `t_us / width_us`.
    pub index: u64,
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    /// Sparse log-bucketed histogram (sample series only).
    buckets: BTreeMap<u32, u64>,
    /// Worst-valued `(value, trace_id)` exemplars landed in this window
    /// (bounded by [`EXEMPLARS_PER_WINDOW`], sorted worst-first; ties
    /// keep the earlier arrival so insertion order stays deterministic).
    exemplars: Vec<(u64, u64)>,
}

impl Window {
    fn new(index: u64) -> Window {
        Window {
            index,
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: BTreeMap::new(),
            exemplars: Vec::new(),
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(bucket_of(v) as u32).or_insert(0) += 1;
    }

    fn bump(&mut self, by: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(by);
    }

    fn note_exemplar(&mut self, v: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        // Insert sorted descending by value; equal values keep arrival
        // order (strict `>` finds the slot *after* existing equals).
        let pos = self
            .exemplars
            .iter()
            .position(|&(ev, _)| v > ev)
            .unwrap_or(self.exemplars.len());
        if pos >= EXEMPLARS_PER_WINDOW {
            return;
        }
        self.exemplars.insert(pos, (v, trace_id));
        self.exemplars.truncate(EXEMPLARS_PER_WINDOW);
    }

    /// The window's worst `(value, trace_id)` exemplars, worst first.
    pub fn exemplars(&self) -> &[(u64, u64)] {
        &self.exemplars
    }

    /// Samples (sample series) or increment calls (rate series).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples or increments.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Increment total per second of window (rate series).
    pub fn rate_per_sec(&self, width_us: u64) -> f64 {
        self.total as f64 / (width_us as f64 / 1_000_000.0)
    }

    /// Quantile estimate from the sparse buckets, clamped into
    /// `[min, max]`; 0 when the window holds no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                let idx = idx as usize;
                let mid = bucket_lo(idx) + (bucket_width(idx) - 1) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Clone)]
struct Series {
    kind: SeriesKind,
    windows: VecDeque<Window>,
    evicted: u64,
    late: u64,
}

impl Series {
    fn new(kind: SeriesKind) -> Series {
        Series { kind, windows: VecDeque::new(), evicted: 0, late: 0 }
    }

    /// The window for `index`, materializing it (and evicting the
    /// oldest beyond the cap) as needed. `None` for writes into windows
    /// older than the earliest retained one.
    fn window_mut(&mut self, index: u64, cap: usize) -> Option<&mut Window> {
        match self.windows.back() {
            None => self.windows.push_back(Window::new(index)),
            Some(last) if index > last.index => self.windows.push_back(Window::new(index)),
            _ => {
                // Same or older window: find it (almost always the back).
                match self.windows.iter().rposition(|w| w.index <= index) {
                    Some(pos) if self.windows[pos].index == index => {
                        return self.windows.get_mut(pos);
                    }
                    Some(pos) => {
                        // A gap window older than the newest: materialize
                        // in place (cap is checked below the match for
                        // appends; inserts stay ≤ cap because a gap
                        // implies the deque was not full of consecutive
                        // indices — still enforce it defensively).
                        if self.windows.len() >= cap {
                            return None;
                        }
                        self.windows.insert(pos + 1, Window::new(index));
                        return self.windows.get_mut(pos + 1);
                    }
                    None => {
                        // Older than every retained window. If eviction
                        // has happened this is genuinely late; otherwise
                        // the window is still within retention — grow at
                        // the front.
                        if self.evicted > 0 || self.windows.len() >= cap {
                            return None;
                        }
                        self.windows.push_front(Window::new(index));
                        return self.windows.front_mut();
                    }
                }
            }
        }
        while self.windows.len() > cap {
            self.windows.pop_front();
            self.evicted += 1;
        }
        self.windows.back_mut()
    }
}

/// Bounded store of windowed series, keyed by dotted metric name.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    spec: WindowSpec,
    series: BTreeMap<String, Series>,
    /// High-water simulation time, advanced by [`TimeSeries::advance`].
    clock_us: u64,
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::new(WindowSpec::default())
    }
}

impl TimeSeries {
    /// Creates an empty store with the given window geometry.
    pub fn new(spec: WindowSpec) -> TimeSeries {
        TimeSeries { spec, series: BTreeMap::new(), clock_us: 0 }
    }

    /// The window geometry.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Records a latency-style sample at simulation time `t_us`.
    /// Ignored if the name is already a rate series.
    pub fn record(&mut self, name: &str, t_us: u64, v: u64) {
        let idx = t_us / self.spec.width_us;
        let cap = self.spec.max_windows;
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(SeriesKind::Sample));
        if s.kind != SeriesKind::Sample {
            return;
        }
        match s.window_mut(idx, cap) {
            Some(w) => w.observe(v),
            None => s.late += 1,
        }
    }

    /// Like [`record`](Self::record), but also offers `(v, trace_id)`
    /// as an exemplar to the window (kept if among its worst K).
    pub fn record_ex(&mut self, name: &str, t_us: u64, v: u64, trace_id: u64) {
        let idx = t_us / self.spec.width_us;
        let cap = self.spec.max_windows;
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(SeriesKind::Sample));
        if s.kind != SeriesKind::Sample {
            return;
        }
        match s.window_mut(idx, cap) {
            Some(w) => {
                w.observe(v);
                w.note_exemplar(v, trace_id);
            }
            None => s.late += 1,
        }
    }

    /// Adds a counter-style increment at simulation time `t_us`.
    /// Ignored if the name is already a sample series.
    pub fn bump(&mut self, name: &str, t_us: u64, by: u64) {
        let idx = t_us / self.spec.width_us;
        let cap = self.spec.max_windows;
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(SeriesKind::Rate));
        if s.kind != SeriesKind::Rate {
            return;
        }
        match s.window_mut(idx, cap) {
            Some(w) => w.bump(by),
            None => s.late += 1,
        }
    }

    /// Like [`bump`](Self::bump), but tags the increment with the
    /// contributing request's trace id (exemplar for rate-based SLOs).
    pub fn bump_ex(&mut self, name: &str, t_us: u64, by: u64, trace_id: u64) {
        let idx = t_us / self.spec.width_us;
        let cap = self.spec.max_windows;
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(SeriesKind::Rate));
        if s.kind != SeriesKind::Rate {
            return;
        }
        match s.window_mut(idx, cap) {
            Some(w) => {
                w.bump(by);
                w.note_exemplar(by, trace_id);
            }
            None => s.late += 1,
        }
    }

    /// Advances the high-water clock (never backwards); windows with
    /// `index < closed_through()` are complete after this.
    pub fn advance(&mut self, t_us: u64) {
        self.clock_us = self.clock_us.max(t_us);
    }

    /// First window index that is *not* yet fully closed.
    pub fn closed_through(&self) -> u64 {
        self.clock_us / self.spec.width_us
    }

    /// High-water simulation time seen so far.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Series names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The kind of a series, if it exists.
    pub fn kind(&self, name: &str) -> Option<SeriesKind> {
        self.series.get(name).map(|s| s.kind)
    }

    /// Materialized windows of a series, oldest first (empty iterator
    /// for unknown names).
    pub fn windows(&self, name: &str) -> impl Iterator<Item = &Window> {
        self.series.get(name).into_iter().flat_map(|s| s.windows.iter())
    }

    /// One window of a series by index.
    pub fn window(&self, name: &str, index: u64) -> Option<&Window> {
        self.series
            .get(name)?
            .windows
            .iter()
            .find(|w| w.index == index)
    }

    /// Windows evicted from a series by the memory cap.
    pub fn evicted(&self, name: &str) -> u64 {
        self.series.get(name).map_or(0, |s| s.evicted)
    }

    /// Writes dropped because they were older than every retained
    /// window (should stay 0 in a forward-running simulation).
    pub fn late(&self, name: &str) -> u64 {
        self.series.get(name).map_or(0, |s| s.late)
    }

    /// Whether any series holds data.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders one series as a per-window ASCII timeline; sample series
    /// show p50/p95/p99 per window, rate series show totals and
    /// per-second rates. Deterministic for a given store state.
    pub fn render_timeline(&self, name: &str) -> String {
        let mut out = String::new();
        let Some(s) = self.series.get(name) else {
            let _ = writeln!(out, "timeline — {name}: no data");
            return out;
        };
        let width = self.spec.width_us;
        let wsec = width as f64 / 1_000_000.0;
        match s.kind {
            SeriesKind::Sample => {
                let _ = writeln!(out, "timeline — {name} (window {wsec:.0} s, µs)");
                let peak = s.windows.iter().map(|w| w.quantile(0.95)).max().unwrap_or(0);
                let mut prev: Option<u64> = None;
                for w in &s.windows {
                    if prev.is_some_and(|p| w.index > p + 1) {
                        out.push_str("  ⋮ (empty windows)\n");
                    }
                    prev = Some(w.index);
                    let lo = w.index * width / 1_000_000;
                    let hi = (w.index + 1) * width / 1_000_000;
                    let _ = writeln!(
                        out,
                        "  [{lo:>5}–{hi:<5}s) n={:<5} p50={:<9} p95={:<9} p99={:<9} {}",
                        w.count(),
                        w.quantile(0.50),
                        w.quantile(0.95),
                        w.quantile(0.99),
                        bar(w.quantile(0.95), peak),
                    );
                }
            }
            SeriesKind::Rate => {
                let _ = writeln!(out, "timeline — {name} (window {wsec:.0} s, rate)");
                let peak = s.windows.iter().map(Window::total).max().unwrap_or(0);
                let mut prev: Option<u64> = None;
                for w in &s.windows {
                    if prev.is_some_and(|p| w.index > p + 1) {
                        out.push_str("  ⋮ (empty windows)\n");
                    }
                    prev = Some(w.index);
                    let lo = w.index * width / 1_000_000;
                    let hi = (w.index + 1) * width / 1_000_000;
                    let _ = writeln!(
                        out,
                        "  [{lo:>5}–{hi:<5}s) total={:<8} rate={:<10.2}/s {}",
                        w.total(),
                        w.rate_per_sec(width),
                        bar(w.total(), peak),
                    );
                }
            }
        }
        if s.evicted > 0 {
            let _ = writeln!(out, "  ({} oldest windows evicted by the memory cap)", s.evicted);
        }
        out
    }
}

/// A 12-cell ASCII magnitude bar, linear in `v / peak`.
fn bar(v: u64, peak: u64) -> String {
    const CELLS: usize = 12;
    if peak == 0 {
        return String::new();
    }
    let filled = ((v as f64 / peak as f64) * CELLS as f64).round() as usize;
    let filled = filled.min(CELLS);
    let mut s = String::with_capacity(CELLS + 2);
    s.push('|');
    for _ in 0..filled {
        s.push('#');
    }
    for _ in filled..CELLS {
        s.push('.');
    }
    s.push('|');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_windows() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000_000, 16));
        ts.record("plt", 100, 500);
        ts.record("plt", 999_999, 700);
        ts.record("plt", 1_000_000, 900);
        ts.record("plt", 3_500_000, 100);
        let w: Vec<u64> = ts.windows("plt").map(|w| w.index).collect();
        assert_eq!(w, [0, 1, 3]);
        assert_eq!(ts.window("plt", 0).unwrap().count(), 2);
        assert_eq!(ts.window("plt", 1).unwrap().count(), 1);
        assert_eq!(ts.window("plt", 0).unwrap().min(), 500);
        assert_eq!(ts.window("plt", 0).unwrap().max(), 700);
    }

    #[test]
    fn window_quantiles_are_exact_for_small_values() {
        let mut ts = TimeSeries::default();
        for v in 0..=40u64 {
            ts.record("s", 10, v);
        }
        let w = ts.window("s", 0).unwrap();
        assert_eq!(w.quantile(0.5), 20);
        assert_eq!(w.quantile(0.0), 0);
        assert_eq!(w.quantile(1.0), 40);
    }

    #[test]
    fn rate_series_track_totals_and_rates() {
        let mut ts = TimeSeries::new(WindowSpec::new(2_000_000, 16));
        ts.bump("drops", 0, 3);
        ts.bump("drops", 1_999_999, 2);
        ts.bump("drops", 2_000_000, 1);
        let w0 = ts.window("drops", 0).unwrap();
        assert_eq!(w0.total(), 5);
        assert_eq!(w0.count(), 2);
        assert!((w0.rate_per_sec(2_000_000) - 2.5).abs() < 1e-9);
        assert_eq!(ts.window("drops", 1).unwrap().total(), 1);
    }

    #[test]
    fn kind_conflicts_are_ignored_not_corrupted() {
        let mut ts = TimeSeries::default();
        ts.record("x", 0, 10);
        ts.bump("x", 0, 99); // wrong kind: dropped
        assert_eq!(ts.kind("x"), Some(SeriesKind::Sample));
        assert_eq!(ts.window("x", 0).unwrap().count(), 1);
    }

    #[test]
    fn memory_is_bounded_by_eviction() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000, 4));
        for i in 0..10u64 {
            ts.record("s", i * 1_000, i);
        }
        assert_eq!(ts.windows("s").count(), 4);
        assert_eq!(ts.evicted("s"), 6);
        // Oldest retained window is index 6.
        assert_eq!(ts.windows("s").next().unwrap().index, 6);
        // A write into an evicted window is counted, not resurrected.
        ts.record("s", 0, 1);
        assert_eq!(ts.late("s"), 1);
        assert_eq!(ts.windows("s").count(), 4);
    }

    #[test]
    fn out_of_order_writes_within_retention_land_correctly() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000_000, 16));
        ts.record("s", 5_000_000, 50); // window 5
        ts.record("s", 2_000_000, 20); // gap window 2, materialized late
        let idx: Vec<u64> = ts.windows("s").map(|w| w.index).collect();
        assert_eq!(idx, [2, 5]);
        assert_eq!(ts.window("s", 2).unwrap().count(), 1);
        ts.record("s", 2_500_000, 21); // existing window 2
        assert_eq!(ts.window("s", 2).unwrap().count(), 2);
    }

    #[test]
    fn clock_advances_monotonically_and_closes_windows() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000_000, 16));
        assert_eq!(ts.closed_through(), 0);
        ts.advance(2_500_000);
        assert_eq!(ts.closed_through(), 2);
        ts.advance(1_000_000); // backwards: ignored
        assert_eq!(ts.closed_through(), 2);
        assert_eq!(ts.clock_us(), 2_500_000);
    }

    #[test]
    fn exemplars_keep_bounded_worst_k() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000_000, 16));
        for (i, v) in [50u64, 900, 10, 700, 800, 30, 950].iter().enumerate() {
            ts.record_ex("plt", 100 + i as u64, *v, 1000 + i as u64);
        }
        let ex = ts.window("plt", 0).unwrap().exemplars();
        assert_eq!(ex.len(), EXEMPLARS_PER_WINDOW);
        let values: Vec<u64> = ex.iter().map(|&(v, _)| v).collect();
        assert_eq!(values, [950, 900, 800, 700]);
        assert_eq!(ex[0].1, 1006); // trace of the worst sample
        // Untraced samples are aggregated but never become exemplars.
        ts.record_ex("plt", 200, 10_000, 0);
        assert_eq!(ts.window("plt", 0).unwrap().exemplars()[0].0, 950);
        assert_eq!(ts.window("plt", 0).unwrap().count(), 8);
        // Rate-kind exemplars tag contributing traces too.
        ts.bump_ex("errs", 100, 1, 42);
        assert_eq!(ts.window("errs", 0).unwrap().exemplars(), &[(1, 42)]);
    }

    #[test]
    fn timeline_rendering_is_deterministic() {
        let mut ts = TimeSeries::new(WindowSpec::new(1_000_000, 16));
        ts.record("plt", 100, 1500);
        ts.record("plt", 200, 2500);
        ts.bump("errs", 100, 2);
        let a = ts.render_timeline("plt");
        let b = ts.render_timeline("plt");
        assert_eq!(a, b);
        assert!(a.contains("p95"));
        assert!(ts.render_timeline("errs").contains("rate"));
        assert!(ts.render_timeline("missing").contains("no data"));
    }
}
