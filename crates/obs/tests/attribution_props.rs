//! Property tests for cross-tier trace stitching and exclusive-time
//! attribution: whatever span forest the simulator produces — arbitrary
//! interleavings, orphaned parents, unclosed spans, children that outlive
//! their root — the analyzer must (a) partition each rooted tree's wall
//! clock exactly (per-span exclusive times and per-tier blame both sum to
//! the root's PLT, never more), (b) blame nothing on a rootless tree, and
//! (c) be a pure function of the event stream — the same trace analyzed
//! twice yields byte-identical attribution, the property the
//! byte-identical-trace guarantee leans on.

use proptest::prelude::*;
use sc_obs::analyze::{analyze, parse_line, render_json, TraceEvent};
use sc_obs::{write_event_json, Event, Level, SpanId};

/// One generated child span: which earlier span it claims as parent
/// (`parent_sel` indexes into the spans emitted so far, unless
/// `orphan_pct < 15` makes the parent id dangle — the analyzer must
/// re-attach those under the root), where it sits on the clock, which
/// tier its (component, name) maps to, and whether its `span_end` ever
/// made it into the trace (`closed_pct < 85`).
type GenSpan = (u64, u8, u64, u64, u8, u8, bool);

/// One generated trace tree: `(rooted_pct, window, children)`. When
/// `rooted_pct >= 85` the `page_load` root is withheld, leaving a
/// partial trace the analyzer must handle without attributing time.
type GenTree = (u8, u64, Vec<GenSpan>);

fn gen_span() -> impl Strategy<Value = GenSpan> {
    (
        any::<u64>(),      // parent_sel
        0u8..100,          // orphan_pct
        0u64..2_000_000,   // start
        0u64..2_000_000,   // dur
        0u8..8,            // kind
        0u8..100,          // closed_pct
        any::<bool>(),     // ok
    )
}

fn gen_tree() -> impl Strategy<Value = GenTree> {
    (0u8..100, 1u64..1_500_000, prop::collection::vec(gen_span(), 0..12))
}

/// (component, span_name) for each generated kind, chosen to cover every
/// tier `span_tier` distinguishes.
fn kind_names(kind: u8) -> (&'static str, &'static str) {
    match kind {
        0 => ("web", "tunnel"),
        1 => ("scholarcloud", "admission"),
        2 => ("scholarcloud", "establish"),
        3 => ("scholarcloud", "attempt"),
        4 => ("scholarcloud", "relay"),
        5 => ("scholarcloud", "cache_lookup"),
        6 => ("web", "fetch"),
        _ => ("origin", "origin"),
    }
}

#[allow(clippy::too_many_arguments)]
fn push_pair(
    out: &mut Vec<(u64, String)>,
    id: u64,
    component: &'static str,
    name: &'static str,
    start: u64,
    end: Option<u64>,
    trace: u64,
    parent: Option<u64>,
    ok: bool,
) {
    let mut s = Event::new(start, Level::Debug, component, "prop", "span_start")
        .field("span_name", name)
        .field("trace_id", trace)
        .in_span(SpanId(id));
    if let Some(p) = parent {
        s = s.field("parent", p);
    }
    let mut line = String::new();
    write_event_json(&mut line, &s);
    out.push((start, line));
    if let Some(end) = end {
        let e = Event::new(end, Level::Info, component, "prop", "span_end")
            .field("span_name", name)
            .field("ok", ok)
            .in_span(SpanId(id));
        let mut line = String::new();
        write_event_json(&mut line, &e);
        out.push((end, line));
    }
}

/// Lower a generated forest to a time-ordered event stream, the way a
/// real `SC_TRACE` capture would interleave concurrent requests.
fn forest_to_events(forest: &[GenTree]) -> Vec<TraceEvent> {
    let mut lines: Vec<(u64, String)> = Vec::new();
    let mut next_id = 1u64;
    for (t_idx, (rooted_pct, window, children)) in forest.iter().enumerate() {
        let trace = 0x1000 + t_idx as u64;
        let rooted = *rooted_pct < 85;
        let mut ids = Vec::new();
        if rooted {
            push_pair(
                &mut lines,
                next_id,
                "web",
                "page_load",
                0,
                Some(*window),
                trace,
                None,
                true,
            );
            ids.push(next_id);
            next_id += 1;
        }
        for &(parent_sel, orphan_pct, start, dur, kind, closed_pct, ok) in children {
            let parent = if orphan_pct < 15 {
                Some(0xdead_0000 + next_id) // dangling: never a real span id
            } else if ids.is_empty() {
                None
            } else {
                Some(ids[(parent_sel % ids.len() as u64) as usize])
            };
            let (component, name) = kind_names(kind);
            let end = (closed_pct < 85).then_some(start.saturating_add(dur));
            push_pair(&mut lines, next_id, component, name, start, end, trace, parent, ok);
            ids.push(next_id);
            next_id += 1;
        }
    }
    lines.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    lines.iter().map(|(_, l)| parse_line(l).expect("self-emitted line parses")).collect()
}

proptest! {
    /// Exclusive attribution is a partition: for every rooted tree the
    /// per-span exclusive times and the per-tier blame each sum to
    /// exactly the root's PLT — time is never double-counted and never
    /// exceeds the wall clock. Rootless trees blame nothing.
    #[test]
    fn exclusive_attribution_partitions_the_root_window(
        forest in prop::collection::vec(gen_tree(), 1..4)
    ) {
        let events = forest_to_events(&forest);
        let analysis = analyze(&events, 1_000_000);
        prop_assert_eq!(analysis.trees.len(), forest.len());
        for tree in &analysis.trees {
            let excl_sum: u64 = tree.spans.iter().map(|s| s.excl_us).sum();
            let tier_sum: u64 = tree.tier_us.values().sum();
            if tree.root.is_some() {
                prop_assert_eq!(excl_sum, tree.plt_us);
                prop_assert_eq!(tier_sum, tree.plt_us);
            } else {
                prop_assert_eq!(tree.plt_us, 0);
                prop_assert_eq!(excl_sum, 0);
            }
            let root_id = tree.root.map(|i| tree.spans[i].id);
            for span in &tree.spans {
                if Some(span.id) == root_id {
                    prop_assert_eq!(span.depth, 0);
                } else {
                    prop_assert!(span.depth >= 1);
                }
                prop_assert!(span.excl_us <= tree.plt_us);
            }
            prop_assert!(tree.orphans <= tree.spans.len());
        }
    }

    /// The analyzer is deterministic: the same event stream analyzed
    /// twice produces identical trees, identical per-span attribution,
    /// and a byte-identical machine summary.
    #[test]
    fn attribution_is_deterministic(
        forest in prop::collection::vec(gen_tree(), 1..4)
    ) {
        let events = forest_to_events(&forest);
        let a = analyze(&events, 1_000_000);
        let b = analyze(&events, 1_000_000);
        prop_assert_eq!(render_json(&a), render_json(&b));
        prop_assert_eq!(a.trees.len(), b.trees.len());
        for (ta, tb) in a.trees.iter().zip(&b.trees) {
            prop_assert_eq!(ta.trace_id, tb.trace_id);
            prop_assert_eq!(ta.plt_us, tb.plt_us);
            prop_assert_eq!(ta.orphans, tb.orphans);
            let ka: Vec<_> = ta.spans.iter().map(|s| (s.id, s.depth, s.excl_us)).collect();
            let kb: Vec<_> = tb.spans.iter().map(|s| (s.id, s.depth, s.excl_us)).collect();
            prop_assert_eq!(ka, kb);
        }
    }
}
