//! Singleflight request coalescing: concurrent misses for one key share a
//! single upstream fetch.
//!
//! The first requester for a key becomes the **leader** and performs the
//! real fetch (admission, tunnel, origin). Every later requester arriving
//! while that fetch is in flight becomes a **waiter**: it consumes no
//! admission slot and opens no tunnel, and when the leader's response
//! lands it fans out to all waiters in arrival order. A flash crowd of N
//! browsers on a hot Scholar page therefore costs one cross-border stream
//! instead of N.

use std::collections::HashMap;

use crate::store::CacheKey;

/// One in-flight fetch: who leads it and who is waiting on it.
#[derive(Debug)]
pub struct Flight<W> {
    /// The requester performing the upstream fetch.
    pub leader: W,
    /// Requesters parked on the result, in arrival order (which is sim
    /// deterministic), so fan-out order is reproducible.
    pub waiters: Vec<W>,
}

/// What [`Singleflight::begin`] assigned to a requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// First in: perform the upstream fetch.
    Leader,
    /// A fetch for this key is already in flight: wait for its result.
    Waiter,
}

/// The coalescing table. `W` identifies a requester (the proxy uses the
/// browser's TCP handle); it only needs to be comparable so dead
/// requesters can be pruned.
#[derive(Debug, Default)]
pub struct Singleflight<W> {
    flights: HashMap<CacheKey, Flight<W>>,
}

impl<W: Copy + PartialEq> Singleflight<W> {
    /// An empty table.
    pub fn new() -> Self {
        Singleflight { flights: HashMap::new() }
    }

    /// Registers requester `w` for `key`: leader if no fetch is in
    /// flight, waiter otherwise.
    pub fn begin(&mut self, key: &CacheKey, w: W) -> Role {
        match self.flights.get_mut(key) {
            Some(flight) => {
                flight.waiters.push(w);
                Role::Waiter
            }
            None => {
                self.flights.insert(key.clone(), Flight { leader: w, waiters: Vec::new() });
                Role::Leader
            }
        }
    }

    /// True when a fetch for `key` is in flight.
    pub fn is_inflight(&self, key: &CacheKey) -> bool {
        self.flights.contains_key(key)
    }

    /// Number of in-flight fetches.
    pub fn len(&self) -> usize {
        self.flights.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.flights.is_empty()
    }

    /// Ends the flight for `key` (the leader's fetch finished, for better
    /// or worse), returning it so the caller can fan the result out to
    /// the waiters. `None` if no flight was registered.
    pub fn complete(&mut self, key: &CacheKey) -> Option<Flight<W>> {
        self.flights.remove(key)
    }

    /// Drops requester `w` from the flight for `key`, wherever it sits:
    ///
    /// * a waiter is simply removed;
    /// * a departing leader hands the flight to the first waiter, which
    ///   is returned so the caller can restart the fetch under the new
    ///   leader;
    /// * a leader with no waiters ends the flight.
    pub fn forget(&mut self, key: &CacheKey, w: W) -> Option<W> {
        let Some(flight) = self.flights.get_mut(key) else {
            return None;
        };
        if flight.leader == w {
            if flight.waiters.is_empty() {
                self.flights.remove(key);
                None
            } else {
                let promoted = flight.waiters.remove(0);
                flight.leader = promoted;
                Some(promoted)
            }
        } else {
            flight.waiters.retain(|x| *x != w);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str) -> CacheKey {
        ("h".to_string(), path.to_string())
    }

    #[test]
    fn leader_then_waiters_fan_out_in_arrival_order() {
        let mut sf: Singleflight<u32> = Singleflight::new();
        assert_eq!(sf.begin(&key("/"), 1), Role::Leader);
        assert_eq!(sf.begin(&key("/"), 2), Role::Waiter);
        assert_eq!(sf.begin(&key("/"), 3), Role::Waiter);
        // A different key flies independently.
        assert_eq!(sf.begin(&key("/css"), 4), Role::Leader);
        let flight = sf.complete(&key("/")).expect("flight registered");
        assert_eq!(flight.leader, 1);
        assert_eq!(flight.waiters, vec![2, 3]);
        assert!(!sf.is_inflight(&key("/")));
        assert!(sf.is_inflight(&key("/css")));
    }

    #[test]
    fn forget_waiter_and_promote_leader() {
        let mut sf: Singleflight<u32> = Singleflight::new();
        sf.begin(&key("/"), 1);
        sf.begin(&key("/"), 2);
        sf.begin(&key("/"), 3);
        // Waiter 3 disconnects: nothing else changes.
        assert_eq!(sf.forget(&key("/"), 3), None);
        // Leader 1 disconnects: 2 is promoted to restart the fetch.
        assert_eq!(sf.forget(&key("/"), 1), Some(2));
        let flight = sf.complete(&key("/")).unwrap();
        assert_eq!(flight.leader, 2);
        assert!(flight.waiters.is_empty());
    }

    #[test]
    fn lone_leader_forget_ends_the_flight() {
        let mut sf: Singleflight<u32> = Singleflight::new();
        sf.begin(&key("/"), 7);
        assert_eq!(sf.forget(&key("/"), 7), None);
        assert!(sf.is_empty());
    }
}
