//! The byte-budgeted HTTP store: TTL freshness, ETag validators, and
//! deterministic LRU eviction.

use std::cell::{Ref, RefCell, RefMut};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use sc_simnet::time::{SimDuration, SimTime};

/// Cache identity of a response: the origin host (lowercased by the
/// caller) and the request path.
pub type CacheKey = (String, String);

/// Fixed per-entry bookkeeping charge added to the body length when
/// accounting an entry against the byte budget, so a flood of tiny
/// entries cannot grow the index unboundedly under a nominal budget.
pub const ENTRY_OVERHEAD: usize = 64;

/// Sizing and freshness policy for a [`ContentCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Hard byte budget for stored entries (body + key + overhead). A
    /// budget of `0` disables the cache entirely: every lookup misses and
    /// nothing is stored.
    pub capacity_bytes: usize,
    /// Freshness lifetime used when the origin supplied no `max-age` and
    /// no per-host override matches.
    pub default_ttl: SimDuration,
    /// Per-host TTL overrides (exact host match, highest precedence).
    /// The deployment operator pins these alongside the whitelist.
    pub host_ttl: Vec<(String, SimDuration)>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 256 * 1024,
            default_ttl: SimDuration::from_secs(60),
            host_ttl: Vec::new(),
        }
    }
}

/// The cached representation of an origin response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    /// Origin status (only `200` bodies are cached today).
    pub status: u16,
    /// `Content-Type` to replay downstream (empty if the origin sent none).
    pub content_type: String,
    /// The origin's validator; replayed downstream and used for
    /// conditional revalidation upstream (`If-None-Match`).
    pub etag: String,
    /// `max-age` the origin advertised, replayed downstream so browser
    /// caches age in step with the shared cache.
    pub max_age: Option<u64>,
    /// The response body.
    pub body: Vec<u8>,
}

struct Entry {
    resp: CachedResponse,
    expires_at: SimTime,
    /// LRU position: the key's slot in the recency index. Strictly
    /// monotone, so eviction order is a pure function of the access
    /// sequence.
    seq: u64,
}

/// Result of a cache lookup at a given instant.
#[derive(Debug)]
pub enum Lookup<'a> {
    /// Entry present and within its TTL: serve it directly.
    Fresh(&'a CachedResponse),
    /// Entry present but past its TTL: usable only after a cheap
    /// conditional revalidation (304) upstream.
    Stale(&'a CachedResponse),
    /// No entry.
    Miss,
}

/// What an insert did: whether the body was stored and which keys were
/// evicted to make room (in eviction order). The caller emits
/// observability events from this, keeping the store itself pure.
#[derive(Debug, Default)]
pub struct InsertOutcome {
    /// False when the cache is disabled or the entry exceeds the whole
    /// budget by itself.
    pub inserted: bool,
    /// Keys evicted (least recently used first) to fit the new entry.
    pub evicted: Vec<CacheKey>,
}

/// Counters describing everything the cache did, readable mid-run through
/// a [`CacheHandle`]. All counts are exact, not sampled. `PartialEq`
/// lets determinism harnesses compare whole runs structurally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served directly from a fresh entry.
    pub hits: u64,
    /// Requests that became the leader of a full upstream fetch.
    pub misses: u64,
    /// Requests attached as waiters to an in-flight fetch.
    pub coalesced: u64,
    /// Entries evicted under byte-budget pressure (or explicitly).
    pub evicted: u64,
    /// Stale entries refreshed by a 304 from the origin.
    pub revalidated: u64,
    /// Bodies stored.
    pub insertions: u64,
    /// Bodies refused because they exceed the whole budget.
    pub rejected_oversize: u64,
    /// Body bytes served from the cache instead of refetched upstream
    /// (fresh hits, coalesced waiters, and revalidated replays).
    pub bytes_saved: u64,
    /// Misses this shard forwarded to the owning peer instead of going
    /// upstream (fleet cache-peering hop, requester side).
    pub peer_fetches: u64,
    /// Peer-forwarded requests this shard answered as the key's owner
    /// (fleet cache-peering hop, owner side).
    pub peer_serves: u64,
    /// Every upstream fetch started on behalf of the cache path, in start
    /// order: `(sim time µs, "host path")`. Lets experiments assert
    /// coalescing held the fetch count for a hot key to 1 during a surge.
    pub upstream_fetches: Vec<(u64, String)>,
}

impl CacheStats {
    /// Requests answered from cache state: fresh hits, coalesced waiters,
    /// and stale entries refreshed by a 304.
    pub fn served_from_cache(&self) -> u64 {
        self.hits + self.coalesced + self.revalidated
    }

    /// Fraction of cacheable requests that avoided a full upstream body
    /// transfer. `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.served_from_cache() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.served_from_cache() as f64 / total as f64
        }
    }

    /// Upstream fetches recorded for `host`/`path` strictly before
    /// `before_us` (µs of sim time).
    pub fn fetches_before(&self, host: &str, path: &str, before_us: u64) -> usize {
        let label = format!("{host} {path}");
        self.upstream_fetches
            .iter()
            .filter(|(t, k)| *t < before_us && *k == label)
            .count()
    }
}

/// The shared store. All mutation goes through `&mut self`; the proxy is
/// single-threaded per sim node, so a [`CacheHandle`] wraps this in
/// `Rc<RefCell<_>>` rather than any lock.
pub struct ContentCache {
    cfg: CacheConfig,
    map: HashMap<CacheKey, Entry>,
    /// Recency index: seq → key, lowest seq = least recently used.
    /// A `BTreeMap` (not a `HashMap`) so eviction scans are ordered and
    /// the evicted sequence is deterministic.
    lru: BTreeMap<u64, CacheKey>,
    next_seq: u64,
    used: usize,
    /// Everything the cache did; read through [`CacheHandle::stats`].
    pub stats: CacheStats,
}

impl ContentCache {
    /// Creates an empty cache with the given policy.
    pub fn new(cfg: CacheConfig) -> Self {
        ContentCache {
            cfg,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_seq: 0,
            used: 0,
            stats: CacheStats::default(),
        }
    }

    /// False when the byte budget is zero (the cache-off control
    /// configuration): lookups miss and inserts are dropped.
    pub fn enabled(&self) -> bool {
        self.cfg.capacity_bytes > 0
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.cfg.capacity_bytes
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn cost(key: &CacheKey, resp: &CachedResponse) -> usize {
        resp.body.len() + key.0.len() + key.1.len() + ENTRY_OVERHEAD
    }

    /// Resolves the freshness lifetime for an entry from `host`:
    /// per-host operator override, else the origin's `max-age`, else the
    /// configured default.
    pub fn ttl_for(&self, host: &str, origin_max_age: Option<u64>) -> SimDuration {
        for (h, ttl) in &self.cfg.host_ttl {
            if h == host {
                return *ttl;
            }
        }
        match origin_max_age {
            Some(secs) => SimDuration::from_secs(secs),
            None => self.cfg.default_ttl,
        }
    }

    /// Looks up `key` at instant `now`, refreshing its LRU position on
    /// any find (fresh or stale — a stale find is about to be
    /// revalidated, which is a use). Does not touch the stats counters:
    /// hit/miss/coalesced accounting belongs to the request dispatcher,
    /// which alone knows whether a miss became a leader or a waiter.
    pub fn lookup(&mut self, key: &CacheKey, now: SimTime) -> Lookup<'_> {
        if !self.enabled() {
            return Lookup::Miss;
        }
        let Some(entry) = self.map.get_mut(key) else {
            return Lookup::Miss;
        };
        // Touch: move to the most-recent end of the recency index.
        self.lru.remove(&entry.seq);
        entry.seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(entry.seq, key.clone());
        if now < entry.expires_at {
            Lookup::Fresh(&entry.resp)
        } else {
            Lookup::Stale(&entry.resp)
        }
    }

    /// Returns the stored etag for `key`, fresh or stale, without
    /// touching recency.
    pub fn etag_of(&self, key: &CacheKey) -> Option<&str> {
        self.map.get(key).map(|e| e.resp.etag.as_str())
    }

    /// Stores `resp` under `key` with lifetime `ttl`, evicting
    /// least-recently-used entries until the budget holds. A body larger
    /// than the whole budget is rejected (and any previous entry under
    /// the key is dropped rather than left to serve stale data).
    pub fn insert(
        &mut self,
        key: CacheKey,
        resp: CachedResponse,
        ttl: SimDuration,
        now: SimTime,
    ) -> InsertOutcome {
        let mut out = InsertOutcome::default();
        // Replacement: the old body under this key is gone either way.
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.seq);
            self.used -= Self::cost(&key, &old.resp);
        }
        if !self.enabled() {
            return out;
        }
        let cost = Self::cost(&key, &resp);
        if cost > self.cfg.capacity_bytes {
            self.stats.rejected_oversize += 1;
            return out;
        }
        while self.used + cost > self.cfg.capacity_bytes {
            // Lowest seq = least recently used; BTreeMap ordering makes
            // the victim sequence deterministic.
            let (&victim_seq, _) = self.lru.iter().next().expect("used > 0 implies entries");
            let victim_key = self.lru.remove(&victim_seq).expect("victim indexed");
            let victim = self.map.remove(&victim_key).expect("index and map agree");
            self.used -= Self::cost(&victim_key, &victim.resp);
            self.stats.evicted += 1;
            out.evicted.push(victim_key);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(seq, key.clone());
        self.used += cost;
        self.map.insert(key, Entry { resp, expires_at: now + ttl, seq });
        self.stats.insertions += 1;
        out.inserted = true;
        out
    }

    /// Refreshes a stale entry after the origin confirmed it with a 304:
    /// extends the lifetime to `now + ttl` (and adopts a new etag if the
    /// 304 carried one). Returns the refreshed body for replay, or `None`
    /// if the entry was evicted while the revalidation was in flight.
    pub fn revalidate(
        &mut self,
        key: &CacheKey,
        ttl: SimDuration,
        now: SimTime,
        new_etag: Option<&str>,
    ) -> Option<&CachedResponse> {
        let entry = self.map.get_mut(key)?;
        entry.expires_at = now + ttl;
        if let Some(etag) = new_etag {
            if !etag.is_empty() {
                entry.resp.etag = etag.to_string();
            }
        }
        self.stats.revalidated += 1;
        Some(&entry.resp)
    }

    /// Explicitly drops `key`, counting it as an eviction. Returns true
    /// if an entry was present.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(entry) => {
                self.lru.remove(&entry.seq);
                self.used -= Self::cost(key, &entry.resp);
                self.stats.evicted += 1;
                true
            }
            None => false,
        }
    }

    /// Records a request served directly from a fresh entry.
    pub fn note_hit(&mut self, body_len: usize) {
        self.stats.hits += 1;
        self.stats.bytes_saved += body_len as u64;
    }

    /// Records a request attached as a waiter to an in-flight fetch.
    pub fn note_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Records body bytes a coalesced waiter received without an
    /// upstream transfer of its own.
    pub fn note_bytes_saved(&mut self, body_len: usize) {
        self.stats.bytes_saved += body_len as u64;
    }

    /// Records a request that became the leader of a full upstream fetch.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Records an upstream fetch started at `now` for `key` (leader
    /// fetches only — coalesced waiters by construction start none).
    pub fn note_upstream_fetch(&mut self, key: &CacheKey, now: SimTime) {
        self.stats
            .upstream_fetches
            .push((now.as_micros(), format!("{} {}", key.0, key.1)));
    }

    /// Records a miss forwarded to the owning peer shard instead of
    /// going upstream (requester side of the peering hop).
    pub fn note_peer_fetch(&mut self) {
        self.stats.peer_fetches += 1;
    }

    /// Records a peer-forwarded request answered by this shard as the
    /// key's owner (owner side of the peering hop).
    pub fn note_peer_serve(&mut self) {
        self.stats.peer_serves += 1;
    }
}

/// Shared ownership of one [`ContentCache`] between the domestic proxy
/// and the scenario/report layer, mirroring `SchemeHandle`: the sim is
/// single-threaded, so `Rc<RefCell<_>>` suffices.
#[derive(Clone)]
pub struct CacheHandle(Rc<RefCell<ContentCache>>);

impl CacheHandle {
    /// Creates a handle around a fresh cache with the given policy.
    pub fn new(cfg: CacheConfig) -> Self {
        CacheHandle(Rc::new(RefCell::new(ContentCache::new(cfg))))
    }

    /// Immutably borrows the cache (panics if already mutably borrowed,
    /// which would be a reentrancy bug).
    pub fn borrow(&self) -> Ref<'_, ContentCache> {
        self.0.borrow()
    }

    /// Mutably borrows the cache.
    pub fn borrow_mut(&self) -> RefMut<'_, ContentCache> {
        self.0.borrow_mut()
    }

    /// Snapshot of the stats counters.
    pub fn stats(&self) -> CacheStats {
        self.0.borrow().stats.clone()
    }
}

impl core::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let c = self.0.borrow();
        f.debug_struct("CacheHandle")
            .field("used_bytes", &c.used_bytes())
            .field("capacity_bytes", &c.capacity_bytes())
            .field("entries", &c.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(len: usize, etag: &str) -> CachedResponse {
        CachedResponse {
            status: 200,
            content_type: "text/html".into(),
            etag: etag.into(),
            max_age: Some(60),
            body: vec![b'x'; len],
        }
    }

    fn key(host: &str, path: &str) -> CacheKey {
        (host.to_string(), path.to_string())
    }

    fn cache(capacity: usize) -> ContentCache {
        ContentCache::new(CacheConfig {
            capacity_bytes: capacity,
            default_ttl: SimDuration::from_secs(60),
            host_ttl: vec![("pinned.example".into(), SimDuration::from_secs(5))],
        })
    }

    #[test]
    fn fresh_then_stale_then_revalidated() {
        let mut c = cache(4096);
        let k = key("scholar.google.com", "/");
        let t0 = SimTime::from_secs(0);
        c.insert(k.clone(), resp(100, "\"e1\""), SimDuration::from_secs(10), t0);
        assert!(matches!(c.lookup(&k, SimTime::from_secs(5)), Lookup::Fresh(_)));
        assert!(matches!(c.lookup(&k, SimTime::from_secs(10)), Lookup::Stale(_)));
        let body = c
            .revalidate(&k, SimDuration::from_secs(10), SimTime::from_secs(10), None)
            .expect("entry still present")
            .body
            .clone();
        assert_eq!(body.len(), 100);
        assert!(matches!(c.lookup(&k, SimTime::from_secs(19)), Lookup::Fresh(_)));
        assert_eq!(c.stats.revalidated, 1);
    }

    #[test]
    fn ttl_resolution_precedence() {
        let c = cache(4096);
        // Operator override beats the origin's max-age.
        assert_eq!(c.ttl_for("pinned.example", Some(600)), SimDuration::from_secs(5));
        // Origin max-age beats the default.
        assert_eq!(c.ttl_for("scholar.google.com", Some(30)), SimDuration::from_secs(30));
        // Default when neither applies.
        assert_eq!(c.ttl_for("scholar.google.com", None), SimDuration::from_secs(60));
    }

    #[test]
    fn lru_eviction_order_is_least_recently_used() {
        // Three entries of cost 100+overhead each under a budget that
        // fits only three; touching `a` makes `b` the victim.
        let overhead = ENTRY_OVERHEAD + 3; // host "h" (1) + paths "/x" (2)
        let mut c = cache(3 * (100 + overhead));
        let t = SimTime::ZERO;
        let ttl = SimDuration::from_secs(60);
        for p in ["/a", "/b", "/c"] {
            c.insert(key("h", p), resp(100, "\"e\""), ttl, t);
        }
        let _ = c.lookup(&key("h", "/a"), t);
        let out = c.insert(key("h", "/d"), resp(100, "\"e\""), ttl, t);
        assert!(out.inserted);
        assert_eq!(out.evicted, vec![key("h", "/b")]);
        assert!(matches!(c.lookup(&key("h", "/b"), t), Lookup::Miss));
        assert!(matches!(c.lookup(&key("h", "/a"), t), Lookup::Fresh(_)));
    }

    #[test]
    fn oversized_body_is_rejected_and_replacement_drops_old_entry() {
        let mut c = cache(300);
        let k = key("h", "/big");
        let t = SimTime::ZERO;
        let ttl = SimDuration::from_secs(60);
        assert!(c.insert(k.clone(), resp(100, "\"v1\""), ttl, t).inserted);
        // The replacement is too big for the whole budget: rejected, and
        // the old entry must not survive to serve stale data.
        let out = c.insert(k.clone(), resp(4096, "\"v2\""), ttl, t);
        assert!(!out.inserted);
        assert!(matches!(c.lookup(&k, t), Lookup::Miss));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats.rejected_oversize, 1);
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut c = cache(0);
        let k = key("h", "/");
        assert!(!c.enabled());
        assert!(!c.insert(k.clone(), resp(10, "\"e\""), SimDuration::from_secs(60), SimTime::ZERO).inserted);
        assert!(matches!(c.lookup(&k, SimTime::ZERO), Lookup::Miss));
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = cache(4096);
        c.note_miss();
        c.note_hit(100);
        c.note_hit(100);
        c.note_coalesced();
        assert_eq!(c.stats.served_from_cache(), 3);
        assert!((c.stats.hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(c.stats.bytes_saved, 200);
    }

    #[test]
    fn fetch_log_filters_by_key_and_time() {
        let mut c = cache(4096);
        let k = key("scholar.google.com", "/");
        c.note_upstream_fetch(&k, SimTime::from_secs(1));
        c.note_upstream_fetch(&k, SimTime::from_secs(30));
        c.note_upstream_fetch(&key("scholar.google.com", "/css"), SimTime::from_secs(1));
        assert_eq!(c.stats.fetches_before("scholar.google.com", "/", 20_000_000), 1);
        assert_eq!(c.stats.fetches_before("scholar.google.com", "/", u64::MAX), 2);
    }
}
