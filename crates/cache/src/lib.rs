//! # sc-cache — shared HTTP content cache for the domestic proxy
//!
//! The paper's headline metric (§4.2, Fig. 5) splits page load time into
//! *first-time* vs *subsequent* loads, but that warm-path win lives in each
//! browser's private cache: the domestic proxy still pays one full blinded
//! tunnel round trip to the origin per client. This crate turns the
//! per-user speedup into a fleet-wide capacity multiplier — upstream bytes
//! through the scarce cross-border hop are the cost driver of the paper's
//! 2-VM deployment, so every shared hit is capacity reclaimed.
//!
//! Three pieces, all deterministic (every decision is a pure function of
//! the seeded simulation's clock — no wall time, no hash-order dependence):
//!
//! * [`ContentCache`] — an HTTP-semantics store keyed by `(host, path)`
//!   with per-entry TTL, ETag validators, and LRU eviction under a hard
//!   byte budget (the budget is never exceeded; pinned by proptests).
//! * [`Singleflight`] — request coalescing: concurrent misses for the same
//!   key collapse into one upstream fetch whose result fans out to every
//!   waiter, so a flash crowd on a hot Scholar page costs one tunnel
//!   stream instead of N.
//! * [`CacheHandle`] — the `Rc<RefCell<_>>` wrapper shared between the
//!   proxy (which owns the decisions) and the scenario/report layer (which
//!   reads [`CacheStats`]).

#![warn(missing_docs)]

pub mod shard;
pub mod singleflight;
pub mod store;

pub use shard::ShardMap;
pub use singleflight::{Flight, Role, Singleflight};
pub use store::{
    CacheConfig, CacheHandle, CacheKey, CacheStats, CachedResponse, ContentCache, InsertOutcome,
    Lookup,
};
