//! Consistent-hash shard placement for the fleet content cache.
//!
//! With N domestic proxies the shared content cache is sharded so each
//! `(host, path)` key has exactly one *owner* shard holding its entry;
//! a miss at any other shard costs one intra-fleet peering hop instead
//! of a cross-border upstream fetch. Placement uses rendezvous
//! (highest-random-weight) hashing: every member scores
//! `hash(key, member)` and the highest score owns the key. Rendezvous
//! beats a hash ring here because membership is tiny (2–8 proxies) and
//! the minimal-disruption property is exact — when a member dies, only
//! the keys it owned move, each to its second-highest scorer, and they
//! move *back* on recovery. All arithmetic is integer FNV-1a, so
//! placement is a pure function of `(key, membership)`: same fleet,
//! same owners, every run.

use crate::store::CacheKey;

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rendezvous-hash shard map over a fixed fleet membership.
///
/// Members are identified by their index `0..n`; the scenario layer
/// maps indices to proxy addresses. The map itself is immutable —
/// liveness is passed per lookup (`owner_among`) so every caller's view
/// of who is alive decides placement locally and deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    members: usize,
}

impl ShardMap {
    /// A map over `members` shards (at least 1).
    pub fn new(members: usize) -> Self {
        assert!(members >= 1, "shard map needs at least one member");
        ShardMap { members }
    }

    /// Number of shards.
    pub fn members(&self) -> usize {
        self.members
    }

    /// The rendezvous score of `member` for `key`.
    fn score(key: &CacheKey, member: usize) -> u64 {
        let mut bytes = Vec::with_capacity(key.0.len() + key.1.len() + 9);
        bytes.extend_from_slice(key.0.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(key.1.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(member as u64).to_le_bytes());
        fnv1a(&bytes)
    }

    /// The owner shard for `key` with every member alive.
    pub fn owner(&self, key: &CacheKey) -> usize {
        self.owner_among(key, &vec![true; self.members])
            .expect("all-alive membership always has an owner")
    }

    /// The owner shard for `key` among the members marked alive, or
    /// `None` if the whole fleet is down. A dead member's keyspace
    /// redistributes to each key's next-highest scorer; keys owned by
    /// the survivors do not move.
    pub fn owner_among(&self, key: &CacheKey, alive: &[bool]) -> Option<usize> {
        assert_eq!(alive.len(), self.members, "liveness vector must cover the fleet");
        (0..self.members)
            .filter(|&m| alive[m])
            // max_by_key keeps the *last* max; tie-break on the lowest
            // index explicitly so placement never depends on iteration
            // direction. (64-bit score ties are astronomically rare but
            // determinism must not hinge on that.)
            .min_by_key(|&m| (std::cmp::Reverse(Self::score(key, m)), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(host: &str, path: &str) -> CacheKey {
        (host.to_string(), path.to_string())
    }

    fn keys(n: usize) -> Vec<CacheKey> {
        (0..n).map(|i| key("scholar.google.com", &format!("/paper/{i}"))).collect()
    }

    #[test]
    fn single_member_owns_everything() {
        let map = ShardMap::new(1);
        for k in keys(50) {
            assert_eq!(map.owner(&k), 0);
        }
    }

    #[test]
    fn placement_is_stable_and_spread() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for k in keys(400) {
            let o = map.owner(&k);
            assert_eq!(map.owner(&k), o, "same key, same owner");
            counts[o] += 1;
        }
        for (m, &c) in counts.iter().enumerate() {
            assert!(c > 40, "member {m} owns only {c}/400 keys — not a spread");
        }
    }

    #[test]
    fn dead_member_moves_only_its_own_keys() {
        let map = ShardMap::new(4);
        let all = vec![true; 4];
        let mut without_2 = all.clone();
        without_2[2] = false;
        for k in keys(400) {
            let before = map.owner_among(&k, &all).unwrap();
            let after = map.owner_among(&k, &without_2).unwrap();
            if before != 2 {
                assert_eq!(after, before, "survivor-owned key moved");
            } else {
                assert_ne!(after, 2, "dead member still owns a key");
            }
        }
    }

    #[test]
    fn recovery_restores_original_placement() {
        let map = ShardMap::new(3);
        let all = vec![true; 3];
        let degraded = vec![true, false, true];
        for k in keys(100) {
            let original = map.owner_among(&k, &all).unwrap();
            let _ = map.owner_among(&k, &degraded).unwrap();
            assert_eq!(map.owner_among(&k, &all).unwrap(), original);
        }
    }

    #[test]
    fn whole_fleet_down_has_no_owner() {
        let map = ShardMap::new(2);
        assert_eq!(map.owner_among(&key("h", "/p"), &[false, false]), None);
    }
}
