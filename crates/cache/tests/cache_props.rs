//! Property tests for the shared content cache: whatever interleaving of
//! inserts, lookups, removals, and time advances the simulator produces,
//! the store must (a) never exceed its declared byte budget, (b) never
//! resurrect an evicted entry, (c) fan one leader's body out unchanged to
//! every coalesced waiter, and (d) be a pure function of the op stream —
//! the property the byte-identical-trace guarantee leans on.

use proptest::prelude::*;
use sc_cache::{
    CacheConfig, CacheKey, CachedResponse, ContentCache, Lookup, Role, Singleflight,
};
use sc_simnet::time::{SimDuration, SimTime};

/// One step of the op stream:
/// `(dt_ms, path_id, body_len, kind)` — advance time, then act on one of
/// a small set of keys so the stream actually collides: 0–2 insert (3×
/// weight so the budget sees pressure), 3 lookup, 4 remove, 5 revalidate.
type Op = (u16, u8, u16, u8);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u16..500, 0u8..6, 0u16..700, 0u8..6), 1..120)
}

fn key(path_id: u8) -> CacheKey {
    ("scholar.google.com".to_string(), format!("/p{path_id}"))
}

fn resp(body_len: u16, version: u8) -> CachedResponse {
    CachedResponse {
        status: 200,
        content_type: "text/html".to_string(),
        etag: format!("\"v{version}\""),
        max_age: Some(30),
        body: vec![version; body_len as usize],
    }
}

/// Replays `ops` against a fresh cache, checking the budget invariant
/// after every step and returning a full decision log plus final stats.
fn replay(ops: &[Op], capacity: usize) -> (Vec<String>, String) {
    let mut cache = ContentCache::new(CacheConfig {
        capacity_bytes: capacity,
        default_ttl: SimDuration::from_secs(10),
        host_ttl: Vec::new(),
    });
    let ttl = SimDuration::from_secs(10);
    let mut now = SimTime::ZERO;
    let mut log = Vec::new();
    for (i, &(dt_ms, path_id, body_len, kind)) in ops.iter().enumerate() {
        now = now + SimDuration::from_millis(u64::from(dt_ms));
        let k = key(path_id % 4);
        match kind {
            0..=2 => {
                let out = cache.insert(k.clone(), resp(body_len, path_id), ttl, now);
                log.push(format!("{i} insert {k:?} -> {} {:?}", out.inserted, out.evicted));
            }
            3 => {
                let what = match cache.lookup(&k, now) {
                    Lookup::Fresh(r) => format!("fresh:{}", r.body.len()),
                    Lookup::Stale(r) => format!("stale:{}", r.body.len()),
                    Lookup::Miss => "miss".to_string(),
                };
                log.push(format!("{i} lookup {k:?} -> {what}"));
            }
            4 => {
                log.push(format!("{i} remove {k:?} -> {}", cache.remove(&k)));
            }
            _ => {
                let hit = cache.revalidate(&k, ttl, now, Some("\"r\"")).is_some();
                log.push(format!("{i} revalidate {k:?} -> {hit}"));
            }
        }
        // (a) The hard budget is an invariant of every state, not just a
        // final condition.
        assert!(
            cache.used_bytes() <= cache.capacity_bytes(),
            "budget exceeded after step {i}: {} > {}",
            cache.used_bytes(),
            cache.capacity_bytes()
        );
    }
    let s = cache.stats;
    let summary = format!(
        "ins={} evict={} reval={} oversize={}",
        s.insertions, s.evicted, s.revalidated, s.rejected_oversize
    );
    (log, summary)
}

proptest! {
    #[test]
    fn byte_budget_never_exceeded(ops in ops(), capacity in 0usize..2048) {
        // The assertion lives inside replay, checked after every op.
        let _ = replay(&ops, capacity);
    }

    #[test]
    fn decisions_are_deterministic(ops in ops(), capacity in 0usize..2048) {
        // Same op stream, two fresh caches: identical decision logs —
        // no HashMap iteration order may leak into eviction choices.
        let a = replay(&ops, capacity);
        let b = replay(&ops, capacity);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn no_resurrection_after_eviction(ops in ops(), capacity in 64usize..1024) {
        // Model check: an entry evicted (by pressure or removal) must
        // stay gone until a later insert under the same key.
        let mut cache = ContentCache::new(CacheConfig {
            capacity_bytes: capacity,
            default_ttl: SimDuration::from_secs(10),
            host_ttl: Vec::new(),
        });
        let ttl = SimDuration::from_secs(10);
        let mut now = SimTime::ZERO;
        let mut live: std::collections::BTreeSet<CacheKey> = Default::default();
        for &(dt_ms, path_id, body_len, kind) in &ops {
            now = now + SimDuration::from_millis(u64::from(dt_ms));
            let k = key(path_id % 4);
            match kind {
                0..=2 => {
                    let out = cache.insert(k.clone(), resp(body_len, path_id), ttl, now);
                    for victim in &out.evicted {
                        prop_assert_ne!(victim, &k, "insert may not evict its own key");
                        live.remove(victim);
                    }
                    if out.inserted {
                        live.insert(k.clone());
                    } else {
                        live.remove(&k);
                    }
                }
                4 => {
                    cache.remove(&k);
                    live.remove(&k);
                }
                _ => {}
            }
            // The cache agrees with the model exactly: present iff live.
            let found = !matches!(cache.lookup(&k, now), Lookup::Miss);
            prop_assert_eq!(
                found,
                live.contains(&k),
                "cache and model disagree on {:?}",
                k
            );
        }
    }

    #[test]
    fn coalesced_waiters_all_observe_the_same_body(
        waiters in proptest::collection::vec(0u32..1000, 0..24),
        body_len in 1u16..600,
    ) {
        // One leader, arbitrary waiters; the leader's completed fetch is
        // inserted once and fanned out. Every waiter must see exactly
        // the inserted body, in arrival order.
        let mut cache = ContentCache::new(CacheConfig::default());
        let mut sf: Singleflight<u32> = Singleflight::new();
        let k = key(0);
        prop_assert_eq!(sf.begin(&k, 9999), Role::Leader);
        for (i, w) in waiters.iter().enumerate() {
            prop_assert_eq!(sf.begin(&k, *w), Role::Waiter, "waiter {} must coalesce", i);
        }
        let body = resp(body_len, 7);
        let now = SimTime::ZERO;
        cache.insert(k.clone(), body.clone(), SimDuration::from_secs(10), now);
        let flight = sf.complete(&k).expect("flight registered");
        prop_assert_eq!(flight.leader, 9999);
        prop_assert_eq!(&flight.waiters, &waiters);
        for _ in &flight.waiters {
            match cache.lookup(&k, now) {
                Lookup::Fresh(r) => prop_assert_eq!(&r.body, &body.body),
                other => prop_assert!(false, "expected fresh body for waiter, got {:?}", other),
            }
        }
        prop_assert!(!sf.is_inflight(&k), "completed flight must not linger");
    }
}
