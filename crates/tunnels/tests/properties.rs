//! Property-based tests on tunnel wire formats and invariants.

use proptest::prelude::*;
use sc_tunnels::tor::cells::{
    CELL_PAYLOAD, Cell, CellBuf, OnionLayer, cmd, parse_relay_payload, relay_payload,
};
use sc_tunnels::vpn::{NAT_PORT_HI, NAT_PORT_LO, Nat, open_packet, seal_packet};

proptest! {
    /// Sealed VPN packets always open to the original bytes; any single
    /// bit flip is rejected.
    #[test]
    fn vpn_seal_open(key in prop::collection::vec(any::<u8>(), 32),
                     nonce: u64,
                     plain in prop::collection::vec(any::<u8>(), 0..1500),
                     flip in 0usize..1500) {
        let key: [u8; 32] = key.try_into().unwrap();
        let sealed = seal_packet(&key, nonce, &plain);
        prop_assert_eq!(open_packet(&key, &sealed).unwrap(), plain);
        let mut bad = sealed.clone();
        let i = flip % bad.len();
        bad[i] ^= 1;
        prop_assert!(open_packet(&key, &bad).is_none());
    }

    /// Seal never produces the same wire bytes for different nonces.
    #[test]
    fn vpn_seal_nonce_uniqueness(key in prop::collection::vec(any::<u8>(), 32),
                                 n1: u64, n2: u64,
                                 plain in prop::collection::vec(any::<u8>(), 1..500)) {
        prop_assume!(n1 != n2);
        let key: [u8; 32] = key.try_into().unwrap();
        prop_assert_ne!(seal_packet(&key, n1, &plain), seal_packet(&key, n2, &plain));
    }

    /// Tor cells survive arbitrary re-chunking of the byte stream.
    #[test]
    fn cell_stream_rechunking(payloads in prop::collection::vec(
                                  prop::collection::vec(any::<u8>(), 0..CELL_PAYLOAD), 1..8),
                              chunk in 1usize..700) {
        let cells: Vec<Cell> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, p)| Cell::new(i as u32, cmd::RELAY, p))
            .collect();
        let mut wire = Vec::new();
        for c in &cells {
            wire.extend(c.encode());
        }
        let mut buf = CellBuf::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.push(piece);
            while let Some(c) = buf.next_cell() {
                got.push(c);
            }
        }
        prop_assert_eq!(got, cells);
    }

    /// Three onion layers peel back to the original relay payload for any
    /// stream id / command / data, across several sequential cells.
    #[test]
    fn onion_three_hops(msgs in prop::collection::vec(
                            (any::<u16>(), 1u8..7, prop::collection::vec(any::<u8>(), 0..400)),
                            1..6),
                        keys: [u8; 3]) {
        let mk = |i: usize| OnionLayer::new([keys[i]; 32]);
        let mut client = [mk(0), mk(1), mk(2)];
        let mut hops = [mk(0), mk(1), mk(2)];
        for (sid, rcmd, data) in msgs {
            let plain = relay_payload(sid, rcmd, &data);
            let mut wrapped = plain.clone();
            for layer in client.iter_mut().rev() {
                layer.forward(&mut wrapped);
            }
            for hop in hops.iter_mut() {
                hop.forward(&mut wrapped);
            }
            let (s, c, d) = parse_relay_payload(&wrapped).unwrap();
            prop_assert_eq!(s, sid);
            prop_assert_eq!(c, rcmd);
            prop_assert_eq!(d, &data[..]);
        }
    }

    /// NAT translation is invertible and allocated ports stay in range.
    #[test]
    fn nat_invertible(client_port in 1024u16..65000, dst_port in 1u16..65000,
                      flows in 1usize..50) {
        use bytes::Bytes;
        use sc_simnet::addr::{Addr, SocketAddr};
        use sc_simnet::packet::{Packet, TcpFlags, TcpSegmentBody};
        let mut nat = Nat::new();
        let client = Addr::new(10, 0, 0, 1);
        let public = Addr::new(99, 0, 0, 9);
        for i in 0..flows {
            let sport = client_port.wrapping_add(i as u16).max(1);
            let inner = Packet::tcp(
                SocketAddr::new(client, sport),
                SocketAddr::new(Addr::new(99, 2, 0, 1), dst_port),
                TcpSegmentBody { seq: 0, ack: 0, flags: TcpFlags::SYN, window: 0, payload: Bytes::new() },
            );
            let out = nat.outbound(client, public, inner).unwrap();
            let nat_port = out.src_socket().unwrap().port;
            prop_assert!((NAT_PORT_LO..=NAT_PORT_HI).contains(&nat_port));
            // Reply comes back to the NAT port.
            let reply = Packet::tcp(
                SocketAddr::new(Addr::new(99, 2, 0, 1), dst_port),
                SocketAddr::new(public, nat_port),
                TcpSegmentBody { seq: 0, ack: 1, flags: TcpFlags::SYN_ACK, window: 0, payload: Bytes::new() },
            );
            let (back, restored) = nat.inbound(reply).unwrap();
            prop_assert_eq!(back, client);
            prop_assert_eq!(restored.dst_socket().unwrap(), SocketAddr::new(client, sport));
        }
    }
}
