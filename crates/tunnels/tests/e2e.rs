//! End-to-end tests: every tunnel carries an HTTP exchange across a
//! realistic client→border→US topology.

use std::cell::RefCell;
use std::rc::Rc;

use sc_simnet::prelude::*;
use sc_tunnels::names::NameMap;
use sc_tunnels::shadowsocks::{SS_LOCAL_PORT, SsConfig, SsLocal, SsRemote};
use sc_tunnels::status::TunnelStatus;
use sc_tunnels::tor::{
    DIR_PORT, DirectoryServer, MEEK_PORT, MeekGateway, OR_PORT, OrRelay, TOR_SOCKS_PORT, TorClient,
    TorConfig,
};
use sc_tunnels::vpn::{VpnClient, VpnServer, VpnVariant};

const CLIENT: Addr = Addr::new(10, 0, 0, 1);
const VPN_SERVER: Addr = Addr::new(99, 0, 0, 10);
const SS_SERVER: Addr = Addr::new(99, 0, 0, 11);
const BRIDGE: Addr = Addr::new(99, 0, 0, 20);
const MIDDLE: Addr = Addr::new(99, 0, 0, 21);
const EXIT: Addr = Addr::new(99, 0, 0, 22);
const DIRECTORY: Addr = Addr::new(99, 0, 0, 30);
const WEB: Addr = Addr::new(99, 2, 0, 1);
const DOMESTIC_WEB: Addr = Addr::new(10, 0, 0, 80);

struct Topology {
    sim: Sim,
    client: NodeId,
}

fn build_topology(seed: u64) -> Topology {
    let mut sim = Sim::new(seed);
    let client = sim.add_node("client", CLIENT);
    let cernet = sim.add_node("cernet", Addr::new(10, 0, 0, 254));
    let border = sim.add_node("border", Addr::new(172, 16, 0, 1));
    let us = sim.add_node("us-router", Addr::new(99, 0, 0, 254));
    let nodes = [
        ("vpn", VPN_SERVER),
        ("ss", SS_SERVER),
        ("bridge", BRIDGE),
        ("middle", MIDDLE),
        ("exit", EXIT),
        ("dir", DIRECTORY),
        ("web", WEB),
    ];
    let lan = LinkConfig::with_delay(SimDuration::from_millis(2));
    let border_link = LinkConfig::with_delay(SimDuration::from_millis(30)).loss(0.001);
    let pacific = LinkConfig::with_delay(SimDuration::from_millis(60));
    sim.add_link(client, cernet, lan);
    let domestic_web = sim.add_node("domestic-web", DOMESTIC_WEB);
    sim.add_link(domestic_web, cernet, lan);
    sim.add_link(cernet, border, LinkConfig::with_delay(SimDuration::from_millis(5)));
    sim.add_link(border, us, pacific);
    let _ = border_link;
    for (name, addr) in nodes {
        let n = sim.add_node(name, addr);
        sim.add_link(us, n, lan);
    }
    sim.compute_routes();
    Topology { sim, client }
}

fn names() -> NameMap {
    NameMap::new([("web.example", WEB)])
}

/// A tiny HTTP-ish responder.
struct WebServer;
impl App for WebServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(80);
    }
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        if let AppEvent::Tcp(h, TcpEvent::DataReceived) = ev {
            let data = ctx.tcp_recv_all(h);
            if data.windows(4).any(|w| w == b"\r\n\r\n") {
                ctx.tcp_send(h, b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
            }
        }
    }
}

#[derive(Default)]
struct FetchLog {
    response: Vec<u8>,
    done_at: Option<SimTime>,
    failed: bool,
}

/// Waits for tunnel readiness, then fetches direct from the web server
/// (for transparent VPN tunnels).
struct DirectFetcher {
    status: TunnelStatus,
    target: SocketAddr,
    log: Rc<RefCell<FetchLog>>,
    conn: Option<TcpHandle>,
}

impl App for DirectFetcher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(0) => {
                if self.status.is_up() && self.conn.is_none() {
                    self.conn = Some(ctx.tcp_connect(self.target));
                } else if self.conn.is_none() {
                    ctx.set_timer(SimDuration::from_millis(50), 0);
                }
            }
            AppEvent::Tcp(h, TcpEvent::Connected) if Some(h) == self.conn => {
                ctx.tcp_send(h, b"GET / HTTP/1.1\r\nHost: web.example\r\n\r\n");
            }
            AppEvent::Tcp(h, TcpEvent::DataReceived) if Some(h) == self.conn => {
                let data = ctx.tcp_recv_all(h);
                let mut log = self.log.borrow_mut();
                log.response.extend_from_slice(&data);
                log.done_at = Some(ctx.now());
            }
            AppEvent::Tcp(h, TcpEvent::ConnectFailed | TcpEvent::Reset) if Some(h) == self.conn => {
                self.log.borrow_mut().failed = true;
            }
            _ => {}
        }
    }
}

/// Fetches through a local SOCKS5 proxy (Shadowsocks, Tor), waiting for
/// optional tunnel readiness first.
struct SocksFetcher {
    proxy_port: u16,
    status: Option<TunnelStatus>,
    log: Rc<RefCell<FetchLog>>,
    conn: Option<TcpHandle>,
    negotiated: bool,
}

impl App for SocksFetcher {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(0) => {
                let ready = self.status.as_ref().map_or(true, TunnelStatus::is_up);
                if ready && self.conn.is_none() {
                    let me = ctx.addr();
                    self.conn = Some(ctx.tcp_connect(SocketAddr::new(me, self.proxy_port)));
                } else if self.conn.is_none() {
                    ctx.set_timer(SimDuration::from_millis(50), 0);
                }
            }
            AppEvent::Tcp(h, TcpEvent::Connected) if Some(h) == self.conn => {
                // SOCKS5 greeting: no auth.
                ctx.tcp_send(h, &[5, 1, 0]);
            }
            AppEvent::Tcp(h, TcpEvent::DataReceived) if Some(h) == self.conn => {
                let data = ctx.tcp_recv_all(h);
                if !self.negotiated {
                    if data.starts_with(&[5, 0]) && data.len() == 2 {
                        // CONNECT web.example:80 by name.
                        let mut req = vec![5, 1, 0, 3, 11];
                        req.extend_from_slice(b"web.example");
                        req.extend_from_slice(&80u16.to_be_bytes());
                        ctx.tcp_send(h, &req);
                    } else if data.len() >= 10 && data[0] == 5 && data[1] == 0 {
                        self.negotiated = true;
                        ctx.tcp_send(h, b"GET / HTTP/1.1\r\nHost: web.example\r\n\r\n");
                    } else {
                        self.log.borrow_mut().failed = true;
                    }
                } else {
                    let mut log = self.log.borrow_mut();
                    log.response.extend_from_slice(&data);
                    log.done_at = Some(ctx.now());
                }
            }
            AppEvent::Tcp(h, TcpEvent::ConnectFailed | TcpEvent::Reset) if Some(h) == self.conn => {
                self.log.borrow_mut().failed = true;
            }
            _ => {}
        }
    }
}

fn assert_fetched(log: &Rc<RefCell<FetchLog>>, label: &str) {
    let log = log.borrow();
    assert!(!log.failed, "{label}: fetch failed");
    let text = String::from_utf8_lossy(&log.response);
    assert!(
        text.contains("200 OK") && text.ends_with("hello"),
        "{label}: unexpected response {text:?}"
    );
}

fn run_vpn(variant: VpnVariant) -> (Rc<RefCell<FetchLog>>, TunnelStatus) {
    let mut topo = build_topology(42);
    let web_node = topo.sim.node_by_addr(WEB).unwrap();
    topo.sim.install_app(web_node, Box::new(WebServer));
    let vpn_node = topo.sim.node_by_addr(VPN_SERVER).unwrap();
    topo.sim.install_app(vpn_node, Box::new(VpnServer::new(variant, 99)));
    let status = TunnelStatus::new();
    topo.sim.install_app(
        topo.client,
        Box::new(VpnClient::new(variant, VPN_SERVER, 7, status.clone())),
    );
    let log = Rc::new(RefCell::new(FetchLog::default()));
    topo.sim.install_app(
        topo.client,
        Box::new(DirectFetcher {
            status: status.clone(),
            target: SocketAddr::new(WEB, 80),
            log: log.clone(),
            conn: None,
        }),
    );
    topo.sim.run_for(SimDuration::from_secs(30));
    (log, status)
}

#[test]
fn pptp_carries_http() {
    let (log, status) = run_vpn(VpnVariant::Pptp);
    assert!(status.is_up(), "pptp tunnel should come up");
    assert_fetched(&log, "pptp");
}

#[test]
fn l2tp_carries_http() {
    let (log, status) = run_vpn(VpnVariant::L2tp);
    assert!(status.is_up(), "l2tp tunnel should come up");
    assert_fetched(&log, "l2tp");
}

#[test]
fn openvpn_carries_http() {
    let (log, status) = run_vpn(VpnVariant::OpenVpn);
    assert!(status.is_up(), "openvpn tunnel should come up");
    assert_fetched(&log, "openvpn");
}

#[test]
fn vpn_full_tunnel_detours_domestic_traffic() {
    // The paper: native VPN forwards ALL traffic through the remote
    // server, inflating domestic latency. Compare domestic fetch RTT with
    // and without the tunnel.
    let fetch_domestic = |with_vpn: bool| -> SimDuration {
        let mut topo = build_topology(5);
        let dweb = topo.sim.node_by_addr(DOMESTIC_WEB).unwrap();
        topo.sim.install_app(dweb, Box::new(WebServer));
        let status = TunnelStatus::new();
        if with_vpn {
            let vpn_node = topo.sim.node_by_addr(VPN_SERVER).unwrap();
            topo.sim
                .install_app(vpn_node, Box::new(VpnServer::new(VpnVariant::Pptp, 99)));
            topo.sim.install_app(
                topo.client,
                Box::new(VpnClient::new(VpnVariant::Pptp, VPN_SERVER, 7, status.clone())),
            );
        } else {
            status.set(sc_tunnels::status::TunnelState::Up {
                established_at: SimTime::ZERO,
            });
        }
        let log = Rc::new(RefCell::new(FetchLog::default()));
        let start = topo.sim.now();
        topo.sim.install_app(
            topo.client,
            Box::new(DirectFetcher {
                status,
                target: SocketAddr::new(DOMESTIC_WEB, 80),
                log: log.clone(),
                conn: None,
            }),
        );
        topo.sim.run_for(SimDuration::from_secs(20));
        let done = log.borrow().done_at.expect("domestic fetch must finish");
        done - start
    };
    let without = fetch_domestic(false);
    let with = fetch_domestic(true);
    assert!(
        with.as_micros() > 3 * without.as_micros(),
        "full tunnel must inflate domestic latency: {without} -> {with}"
    );
}

#[test]
fn shadowsocks_carries_http() {
    let mut topo = build_topology(43);
    let web_node = topo.sim.node_by_addr(WEB).unwrap();
    topo.sim.install_app(web_node, Box::new(WebServer));
    let cfg = SsConfig::new(SocketAddr::new(SS_SERVER, sc_tunnels::SS_PORT));
    let ss_node = topo.sim.node_by_addr(SS_SERVER).unwrap();
    topo.sim
        .install_app(ss_node, Box::new(SsRemote::new(&cfg, names())));
    topo.sim.install_app(topo.client, Box::new(SsLocal::new(cfg)));
    let log = Rc::new(RefCell::new(FetchLog::default()));
    topo.sim.install_app(
        topo.client,
        Box::new(SocksFetcher {
            proxy_port: SS_LOCAL_PORT,
            status: None,
            log: log.clone(),
            conn: None,
            negotiated: false,
        }),
    );
    topo.sim.run_for(SimDuration::from_secs(30));
    assert_fetched(&log, "shadowsocks");
}

#[test]
fn shadowsocks_reauths_after_keepalive() {
    // Two fetches 15 s apart with a 10 s keep-alive: the second must
    // trigger a fresh auth connection (the paper's TCP-1).
    let mut topo = build_topology(44);
    let web_node = topo.sim.node_by_addr(WEB).unwrap();
    topo.sim.install_app(web_node, Box::new(WebServer));
    let cfg = SsConfig::new(SocketAddr::new(SS_SERVER, sc_tunnels::SS_PORT));
    let ss_node = topo.sim.node_by_addr(SS_SERVER).unwrap();
    topo.sim
        .install_app(ss_node, Box::new(SsRemote::new(&cfg, names())));
    topo.sim.install_app(topo.client, Box::new(SsLocal::new(cfg)));

    let log1 = Rc::new(RefCell::new(FetchLog::default()));
    topo.sim.install_app(
        topo.client,
        Box::new(SocksFetcher {
            proxy_port: SS_LOCAL_PORT,
            status: None,
            log: log1.clone(),
            conn: None,
            negotiated: false,
        }),
    );
    topo.sim.run_for(SimDuration::from_secs(15));
    assert_fetched(&log1, "first ss fetch");

    let log2 = Rc::new(RefCell::new(FetchLog::default()));
    topo.sim.install_app(
        topo.client,
        Box::new(SocksFetcher {
            proxy_port: SS_LOCAL_PORT,
            status: None,
            log: log2.clone(),
            conn: None,
            negotiated: false,
        }),
    );
    topo.sim.run_for(SimDuration::from_secs(15));
    assert_fetched(&log2, "second ss fetch");
    // We cannot reach into the app directly (it is owned by the sim), but
    // the second fetch succeeding after keep-alive expiry proves re-auth
    // worked end to end.
}

#[test]
fn tor_builds_circuit_and_carries_http() {
    let mut topo = build_topology(45);
    let web_node = topo.sim.node_by_addr(WEB).unwrap();
    topo.sim.install_app(web_node, Box::new(WebServer));
    // Bridge: meek gateway + OR relay on the same node.
    let bridge_node = topo.sim.node_by_addr(BRIDGE).unwrap();
    topo.sim
        .install_app(bridge_node, Box::new(OrRelay::new(OR_PORT, 100, NameMap::default())));
    topo.sim.install_app(bridge_node, Box::new(MeekGateway::new(101)));
    let middle_node = topo.sim.node_by_addr(MIDDLE).unwrap();
    topo.sim
        .install_app(middle_node, Box::new(OrRelay::new(OR_PORT, 102, NameMap::default())));
    let exit_node = topo.sim.node_by_addr(EXIT).unwrap();
    topo.sim
        .install_app(exit_node, Box::new(OrRelay::new(OR_PORT, 103, names())));
    let dir_node = topo.sim.node_by_addr(DIRECTORY).unwrap();
    topo.sim.install_app(dir_node, Box::new(DirectoryServer::new()));

    let status = TunnelStatus::new();
    let config = TorConfig {
        directory: SocketAddr::new(DIRECTORY, DIR_PORT),
        bridge: SocketAddr::new(BRIDGE, MEEK_PORT),
        front_domain: "ajax.cdn-front.example".into(),
        middle: SocketAddr::new(MIDDLE, OR_PORT),
        exit: SocketAddr::new(EXIT, OR_PORT),
        socks_port: TOR_SOCKS_PORT,
    };
    topo.sim
        .install_app(topo.client, Box::new(TorClient::new(config, 7, status.clone())));
    let log = Rc::new(RefCell::new(FetchLog::default()));
    topo.sim.install_app(
        topo.client,
        Box::new(SocksFetcher {
            proxy_port: TOR_SOCKS_PORT,
            status: Some(status.clone()),
            log: log.clone(),
            conn: None,
            negotiated: false,
        }),
    );
    topo.sim.run_for(SimDuration::from_secs(120));
    assert!(status.is_up(), "tor circuit should build");
    assert_fetched(&log, "tor");
}
