//! Shared tunnel readiness status, observed by measurement harnesses.

use std::cell::RefCell;
use std::rc::Rc;

use sc_simnet::time::SimTime;

/// Lifecycle of a tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunnelState {
    /// Not yet established.
    #[default]
    Connecting,
    /// Established and usable.
    Up {
        /// When the tunnel came up.
        established_at: SimTime,
    },
    /// Establishment failed.
    Failed,
}

/// A cloneable handle to a tunnel's state, shared between the tunnel app
/// and whoever is waiting on it (browser drivers, the measurement harness).
#[derive(Debug, Clone, Default)]
pub struct TunnelStatus(Rc<RefCell<TunnelState>>);

impl TunnelStatus {
    /// Creates a status handle in `Connecting`.
    pub fn new() -> Self {
        TunnelStatus::default()
    }

    /// Updates the state.
    pub fn set(&self, state: TunnelState) {
        *self.0.borrow_mut() = state;
    }

    /// Reads the current state.
    pub fn get(&self) -> TunnelState {
        *self.0.borrow()
    }

    /// Whether the tunnel is up.
    pub fn is_up(&self) -> bool {
        matches!(self.get(), TunnelState::Up { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_transitions() {
        let s = TunnelStatus::new();
        assert_eq!(s.get(), TunnelState::Connecting);
        assert!(!s.is_up());
        let s2 = s.clone();
        s2.set(TunnelState::Up { established_at: SimTime::from_micros(5) });
        assert!(s.is_up(), "clones share state");
        s.set(TunnelState::Failed);
        assert_eq!(s2.get(), TunnelState::Failed);
    }
}
