//! Shared tunnel readiness status, observed by measurement harnesses.

use std::cell::RefCell;
use std::rc::Rc;

use sc_simnet::time::SimTime;

/// Lifecycle of a tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunnelState {
    /// Not yet established.
    #[default]
    Connecting,
    /// Established and usable.
    Up {
        /// When the tunnel came up.
        established_at: SimTime,
    },
    /// Establishment failed.
    Failed,
}

/// A cloneable handle to a tunnel's state, shared between the tunnel app
/// and whoever is waiting on it (browser drivers, the measurement harness).
#[derive(Debug, Clone, Default)]
pub struct TunnelStatus(Rc<RefCell<TunnelState>>);

impl TunnelStatus {
    /// Creates a status handle in `Connecting`.
    pub fn new() -> Self {
        TunnelStatus::default()
    }

    /// Updates the state, emitting a `tunnels/status` transition event.
    pub fn set(&self, state: TunnelState) {
        let prev = *self.0.borrow();
        *self.0.borrow_mut() = state;
        if prev == state {
            return;
        }
        let (name, t_us) = match state {
            TunnelState::Connecting => ("connecting", 0),
            TunnelState::Up { established_at } => {
                sc_obs::counter_add("tunnels.established", 1);
                ("up", established_at.as_micros())
            }
            TunnelState::Failed => {
                sc_obs::counter_add("tunnels.failed", 1);
                ("failed", 0)
            }
        };
        if sc_obs::is_enabled(sc_obs::Level::Info, "tunnels") {
            sc_obs::emit(
                sc_obs::Event::new(t_us, sc_obs::Level::Info, "tunnels", "status", "transition")
                    .field("state", name),
            );
        }
    }

    /// Reads the current state.
    pub fn get(&self) -> TunnelState {
        *self.0.borrow()
    }

    /// Whether the tunnel is up.
    pub fn is_up(&self) -> bool {
        matches!(self.get(), TunnelState::Up { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_transitions() {
        let s = TunnelStatus::new();
        assert_eq!(s.get(), TunnelState::Connecting);
        assert!(!s.is_up());
        let s2 = s.clone();
        s2.set(TunnelState::Up { established_at: SimTime::from_micros(5) });
        assert!(s.is_up(), "clones share state");
        s.set(TunnelState::Failed);
        assert_eq!(s2.get(), TunnelState::Failed);
    }
}
