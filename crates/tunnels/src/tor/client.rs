//! The Tor client: bootstraps from a directory, connects to its bridge
//! through the meek transport, builds a three-hop circuit, and exposes a
//! local SOCKS5 port to the browser — the moving parts behind the paper's
//! observation that Tor's first-time page load takes 13–20 seconds.

use std::collections::HashMap;

use rand::Rng;
use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest};
use sc_netproto::socks::{SocksServerSession, TargetAddr};
use sc_netproto::tls::TlsClient;
use sc_simnet::addr::SocketAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::SimDuration;

use super::cells::{
    Cell, CellBuf, OnionLayer, RELAY_DATA_MAX, cmd, parse_relay_payload, relay_cmd, relay_payload,
};
use super::directory::DIR_PORT;
use super::meek::MEEK_PATH;
use crate::status::{TunnelState, TunnelStatus};
use sc_crypto::dh::{PrivateKey, PublicKey};

/// Default local SOCKS port (as in the Tor Browser bundle).
pub const TOR_SOCKS_PORT: u16 = 9050;
/// Base poll interval of the meek transport.
pub const POLL_INTERVAL: SimDuration = SimDuration::from_millis(250);
/// Maximum idle poll interval (real meek backs off when idle).
pub const POLL_MAX: SimDuration = SimDuration::from_secs(5);

const TIMER_POLL: u64 = 1;

/// Tor deployment parameters.
#[derive(Debug, Clone)]
pub struct TorConfig {
    /// The directory server.
    pub directory: SocketAddr,
    /// The meek-fronted bridge (HTTPS endpoint).
    pub bridge: SocketAddr,
    /// The innocuous domain fronted in the meek TLS SNI.
    pub front_domain: String,
    /// Middle relay OR address.
    pub middle: SocketAddr,
    /// Exit relay OR address.
    pub exit: SocketAddr,
    /// Local SOCKS port for the browser.
    pub socks_port: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    FetchingCerts,
    FetchingConsensus,
    FetchingDescriptors,
    TlsToBridge,
    Creating,
    Extending(u8),
    Ready,
    Failed,
}

enum BrowserConn {
    Negotiating(SocksServerSession),
    Stream(u16),
    Dead,
}

struct StreamState {
    browser: TcpHandle,
    connected: bool,
    /// Browser bytes buffered until CONNECTED arrives.
    pending: Vec<u8>,
}

/// The Tor client app.
pub struct TorClient {
    config: TorConfig,
    status: TunnelStatus,
    entropy: u64,
    phase: Phase,
    // Bootstrap.
    dir_conn: Option<TcpHandle>,
    dir_http: HttpParser,
    /// Bytes of consensus fetched (diagnostics).
    pub consensus_bytes: usize,
    // Meek transport.
    meek_conn: Option<TcpHandle>,
    tls: Option<TlsClient>,
    session_id: u64,
    http: HttpParser,
    poll_in_flight: bool,
    tx_queue: Vec<u8>,
    cells: CellBuf,
    /// Polls issued (diagnostics; drives the GFW's behavioral detector).
    pub polls_sent: u64,
    /// Consecutive polls that returned no data (drives idle backoff).
    idle_polls: u32,
    // Circuit.
    layers: Vec<OnionLayer>,
    hop_keys: Vec<PrivateKey>,
    circ_id: u32,
    // Streams.
    browsers: HashMap<TcpHandle, BrowserConn>,
    streams: HashMap<u16, StreamState>,
    next_stream: u16,
}

impl TorClient {
    /// Creates a client; readiness is reported on `status`.
    pub fn new(config: TorConfig, entropy: u64, status: TunnelStatus) -> Self {
        TorClient {
            config,
            status,
            entropy,
            phase: Phase::FetchingCerts,
            dir_conn: None,
            dir_http: HttpParser::new(),
            consensus_bytes: 0,
            meek_conn: None,
            tls: None,
            session_id: 0,
            http: HttpParser::new(),
            poll_in_flight: false,
            tx_queue: Vec::new(),
            cells: CellBuf::new(),
            polls_sent: 0,
            idle_polls: 0,
            layers: Vec::new(),
            hop_keys: Vec::new(),
            circ_id: 7,
            browsers: HashMap::new(),
            streams: HashMap::new(),
            next_stream: 1,
        }
    }

    // --- meek transport ---

    fn meek_flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.poll_in_flight {
            return;
        }
        let Some(conn) = self.meek_conn else { return };
        let Some(tls) = self.tls.as_mut() else { return };
        if !tls.is_connected() {
            return;
        }
        let body = std::mem::take(&mut self.tx_queue);
        let req = HttpRequest {
            method: "POST".into(),
            target: MEEK_PATH.into(),
            headers: vec![
                ("Host".into(), self.config.front_domain.clone()),
                ("X-Session-Id".into(), self.session_id.to_string()),
            ],
            body,
        };
        let wire = tls.send(&req.encode());
        ctx.tcp_send(conn, &wire);
        self.poll_in_flight = true;
        self.polls_sent += 1;
    }

    fn queue_cell(&mut self, cell: Cell, ctx: &mut Ctx<'_>) {
        self.tx_queue.extend(cell.encode());
        self.meek_flush(ctx);
    }

    /// Wraps a relay payload in onion layers 0..=`upto` and queues it.
    fn send_relay(&mut self, upto: usize, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        let mut data = payload;
        for layer in self.layers[..=upto].iter_mut().rev() {
            layer.forward(&mut data);
        }
        let cell = Cell::new(self.circ_id, cmd::RELAY, data);
        self.queue_cell(cell, ctx);
    }

    // --- circuit building ---

    fn begin_create(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Creating;
        let key = PrivateKey::from_entropy(self.entropy ^ 0x1111);
        let cell = Cell::new(self.circ_id, cmd::CREATE, key.public_key().to_bytes().to_vec());
        self.hop_keys.push(key);
        self.queue_cell(cell, ctx);
    }

    fn begin_extend(&mut self, hop: u8, ctx: &mut Ctx<'_>) {
        self.phase = Phase::Extending(hop);
        let target = if hop == 1 { self.config.middle } else { self.config.exit };
        let key = PrivateKey::from_entropy(self.entropy ^ (0x2222 * (hop as u64 + 1)));
        let mut data = Vec::with_capacity(14);
        data.extend_from_slice(&target.addr.octets());
        data.extend_from_slice(&target.port.to_be_bytes());
        data.extend_from_slice(&key.public_key().to_bytes());
        self.hop_keys.push(key);
        let payload = relay_payload(0, relay_cmd::EXTEND, &data);
        self.send_relay(self.layers.len() - 1, payload, ctx);
    }

    fn on_hop_established(&mut self, pub_bytes: &[u8], ctx: &mut Ctx<'_>) {
        let Ok(bytes8): Result<[u8; 8], _> = pub_bytes.try_into() else {
            self.phase = Phase::Failed;
            self.status.set(TunnelState::Failed);
            return;
        };
        let Ok(peer) = PublicKey::from_bytes(bytes8) else {
            self.phase = Phase::Failed;
            self.status.set(TunnelState::Failed);
            return;
        };
        let key = self.hop_keys[self.layers.len()].agree(&peer);
        self.layers.push(OnionLayer::new(key));
        match self.layers.len() {
            1 => self.begin_extend(1, ctx),
            2 => self.begin_extend(2, ctx),
            _ => {
                self.phase = Phase::Ready;
                self.status.set(TunnelState::Up { established_at: ctx.now() });
            }
        }
    }

    // --- inbound cells ---

    fn on_cell(&mut self, cell: Cell, ctx: &mut Ctx<'_>) {
        match cell.cmd {
            cmd::CREATED => {
                if self.phase == Phase::Creating {
                    self.on_hop_established(&cell.payload, ctx);
                }
            }
            cmd::RELAY => {
                let mut payload = cell.payload;
                let mut recognized = None;
                for (i, layer) in self.layers.iter_mut().enumerate() {
                    layer.backward(&mut payload);
                    if parse_relay_payload(&payload).is_some() {
                        recognized = Some(i);
                        break;
                    }
                }
                if recognized.is_none() {
                    return;
                }
                let Some((stream_id, rcmd, data)) = parse_relay_payload(&payload) else { return };
                let data = data.to_vec();
                match rcmd {
                    relay_cmd::EXTENDED => {
                        if matches!(self.phase, Phase::Extending(_)) {
                            self.on_hop_established(&data, ctx);
                        }
                    }
                    relay_cmd::CONNECTED => {
                        if let Some(stream) = self.streams.get_mut(&stream_id) {
                            stream.connected = true;
                            let browser = stream.browser;
                            let pending = std::mem::take(&mut stream.pending);
                            // SOCKS success already sent at negotiation time;
                            // now flush buffered request bytes.
                            for chunk in pending.chunks(RELAY_DATA_MAX) {
                                let payload = relay_payload(stream_id, relay_cmd::DATA, chunk);
                                self.send_relay(2, payload, ctx);
                            }
                            let _ = browser;
                        }
                    }
                    relay_cmd::DATA => {
                        if let Some(stream) = self.streams.get(&stream_id) {
                            ctx.tcp_send(stream.browser, &data);
                        }
                    }
                    relay_cmd::END => {
                        if let Some(stream) = self.streams.remove(&stream_id) {
                            ctx.tcp_close(stream.browser);
                            self.browsers.insert(stream.browser, BrowserConn::Dead);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn open_stream(&mut self, browser: TcpHandle, target: TargetAddr, leftover: Vec<u8>, ctx: &mut Ctx<'_>) {
        let stream_id = self.next_stream;
        self.next_stream += 1;
        self.streams.insert(
            stream_id,
            StreamState { browser, connected: false, pending: leftover },
        );
        self.browsers.insert(browser, BrowserConn::Stream(stream_id));
        let payload = relay_payload(stream_id, relay_cmd::BEGIN, &target.encode());
        self.send_relay(2, payload, ctx);
    }
}

impl App for TorClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.config.socks_port);
        self.session_id = ctx.rng().gen();
        // Bootstrap: fetch the consensus first.
        let h = ctx.tcp_connect(self.config.directory);
        self.dir_conn = Some(h);
        debug_assert_eq!(self.config.directory.port, DIR_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(TIMER_POLL) => {
                self.meek_flush(ctx);
            }
            AppEvent::Tcp(h, tcp_ev) if Some(h) == self.dir_conn => match tcp_ev {
                TcpEvent::Connected => {
                    // Bootstrap stage 1: authority certificates.
                    let req = HttpRequest::get("directory.torproject.sim", "/certs");
                    ctx.tcp_send(h, &req.encode());
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    if let Ok(msgs) = self.dir_http.push(&data) {
                        for msg in msgs {
                            if let HttpMessage::Response(resp) = msg {
                                self.consensus_bytes += resp.body.len();
                                match self.phase {
                                    Phase::FetchingCerts => {
                                        self.phase = Phase::FetchingConsensus;
                                        let req = HttpRequest::get(
                                            "directory.torproject.sim",
                                            "/consensus",
                                        );
                                        ctx.tcp_send(h, &req.encode());
                                    }
                                    Phase::FetchingConsensus => {
                                        // Second bootstrap stage: relay
                                        // descriptors, on the same conn.
                                        self.phase = Phase::FetchingDescriptors;
                                        let req = HttpRequest::get(
                                            "directory.torproject.sim",
                                            "/descriptors",
                                        );
                                        ctx.tcp_send(h, &req.encode());
                                    }
                                    Phase::FetchingDescriptors => {
                                        ctx.tcp_close(h);
                                        self.phase = Phase::TlsToBridge;
                                        let conn = ctx.tcp_connect(self.config.bridge);
                                        self.meek_conn = Some(conn);
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                TcpEvent::ConnectFailed | TcpEvent::Reset => {
                    self.phase = Phase::Failed;
                    self.status.set(TunnelState::Failed);
                }
                _ => {}
            },
            AppEvent::Tcp(h, tcp_ev) if Some(h) == self.meek_conn => match tcp_ev {
                TcpEvent::Connected => {
                    let mut tls = TlsClient::new(&self.config.front_domain, self.entropy);
                    let hello = tls.start_handshake();
                    ctx.tcp_send(h, &hello);
                    self.tls = Some(tls);
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    let Some(tls) = self.tls.as_mut() else { return };
                    let Ok(out) = tls.on_bytes(&data) else {
                        self.phase = Phase::Failed;
                        self.status.set(TunnelState::Failed);
                        return;
                    };
                    if !out.wire.is_empty() {
                        ctx.tcp_send(h, &out.wire);
                    }
                    if out.handshake_complete {
                        self.begin_create(ctx);
                    }
                    if !out.plaintext.is_empty() {
                        if let Ok(msgs) = self.http.push(&out.plaintext) {
                            for msg in msgs {
                                if let HttpMessage::Response(resp) = msg {
                                    self.poll_in_flight = false;
                                    if resp.body.is_empty() {
                                        self.idle_polls = self.idle_polls.saturating_add(1);
                                    } else {
                                        self.idle_polls = 0;
                                    }
                                    self.cells.push(&resp.body);
                                    while let Some(cell) = self.cells.next_cell() {
                                        self.on_cell(cell, ctx);
                                    }
                                    // Keep the poll loop alive, backing
                                    // off while idle as real meek does.
                                    if !self.tx_queue.is_empty() {
                                        self.meek_flush(ctx);
                                    } else if self.phase != Phase::Failed {
                                        let factor = 1u64 << self.idle_polls.min(5);
                                        let delay = POLL_INTERVAL
                                            .saturating_mul(factor)
                                            .clamp(POLL_INTERVAL, POLL_MAX);
                                        ctx.set_timer(delay, TIMER_POLL);
                                    }
                                }
                            }
                        }
                    }
                }
                TcpEvent::ConnectFailed | TcpEvent::Reset => {
                    self.phase = Phase::Failed;
                    self.status.set(TunnelState::Failed);
                }
                _ => {}
            },
            AppEvent::Tcp(h, tcp_ev) => {
                // Browser SOCKS side.
                match tcp_ev {
                    TcpEvent::Accepted { .. } => {
                        self.browsers
                            .insert(h, BrowserConn::Negotiating(SocksServerSession::new()));
                    }
                    TcpEvent::DataReceived => {
                        let data = ctx.tcp_recv_all(h);
                        match self.browsers.get_mut(&h) {
                            Some(BrowserConn::Negotiating(sess)) => {
                                let out = sess.on_bytes(&data);
                                if !out.reply.is_empty() {
                                    ctx.tcp_send(h, &out.reply);
                                }
                                if out.failed {
                                    ctx.tcp_close(h);
                                    self.browsers.insert(h, BrowserConn::Dead);
                                } else if let Some(target) = out.connect {
                                    if self.phase == Phase::Ready {
                                        self.open_stream(h, target, out.leftover, ctx);
                                    } else {
                                        ctx.tcp_close(h);
                                        self.browsers.insert(h, BrowserConn::Dead);
                                    }
                                }
                            }
                            Some(BrowserConn::Stream(stream_id)) => {
                                let stream_id = *stream_id;
                                let Some(stream) = self.streams.get_mut(&stream_id) else { return };
                                if !stream.connected {
                                    stream.pending.extend_from_slice(&data);
                                } else {
                                    for chunk in data.chunks(RELAY_DATA_MAX) {
                                        let payload =
                                            relay_payload(stream_id, relay_cmd::DATA, chunk);
                                        self.send_relay(2, payload, ctx);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    TcpEvent::PeerClosed | TcpEvent::Reset => {
                        if let Some(BrowserConn::Stream(stream_id)) = self.browsers.get(&h) {
                            let stream_id = *stream_id;
                            if self.streams.remove(&stream_id).is_some() {
                                let payload = relay_payload(stream_id, relay_cmd::END, &[]);
                                self.send_relay(2, payload, ctx);
                            }
                        }
                        self.browsers.insert(h, BrowserConn::Dead);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
