//! Tor cells: fixed-size link frames and onion-encrypted relay payloads.
//!
//! Like real Tor, all link traffic is carried in fixed 512-byte cells; a
//! RELAY cell's payload is onion-encrypted, one AES-CTR layer per hop,
//! with a "recognized" marker that tells a hop the cell terminates there.

use sc_crypto::modes::Ctr;
use sc_crypto::{Aes, KeySize};

/// Fixed cell size on the wire.
pub const CELL_SIZE: usize = 512;
/// Maximum relay-payload bytes per cell.
pub const CELL_PAYLOAD: usize = CELL_SIZE - 7;
/// Usable data bytes per RELAY DATA cell (payload minus relay header).
pub const RELAY_DATA_MAX: usize = CELL_PAYLOAD - 7;

/// Link-level cell commands.
pub mod cmd {
    /// Create a circuit (payload: client DH public key).
    pub const CREATE: u8 = 1;
    /// Circuit created (payload: relay DH public key).
    pub const CREATED: u8 = 2;
    /// Onion-encrypted relay payload.
    pub const RELAY: u8 = 5;
    /// Tear down a circuit.
    pub const DESTROY: u8 = 6;
}

/// Relay-level commands (inside the onion).
pub mod relay_cmd {
    /// Extend the circuit to another relay.
    pub const EXTEND: u8 = 1;
    /// Extension completed (payload: next relay's DH public key).
    pub const EXTENDED: u8 = 2;
    /// Open a stream to a target.
    pub const BEGIN: u8 = 3;
    /// Stream opened.
    pub const CONNECTED: u8 = 4;
    /// Stream data.
    pub const DATA: u8 = 5;
    /// Stream closed.
    pub const END: u8 = 6;
}

/// The recognized marker prefixing a fully decrypted relay payload.
pub const RECOGNIZED: [u8; 2] = [0x5a, 0xa5];

/// A link cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Circuit identifier, scoped to the link it travels on.
    pub circ_id: u32,
    /// Link command.
    pub cmd: u8,
    /// Payload (≤ [`CELL_PAYLOAD`]; padded to fixed size on the wire).
    pub payload: Vec<u8>,
}

impl Cell {
    /// Builds a cell.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`CELL_PAYLOAD`].
    pub fn new(circ_id: u32, cmd: u8, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= CELL_PAYLOAD, "cell payload too large");
        Cell { circ_id, cmd, payload }
    }

    /// Serializes to exactly [`CELL_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CELL_SIZE);
        out.extend_from_slice(&self.circ_id.to_be_bytes());
        out.push(self.cmd);
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.resize(CELL_SIZE, 0);
        out
    }

    /// Parses one cell from exactly [`CELL_SIZE`] bytes.
    pub fn decode(data: &[u8; CELL_SIZE]) -> Option<Cell> {
        let circ_id = u32::from_be_bytes(data[0..4].try_into().ok()?);
        let cmd = data[4];
        let len = u16::from_be_bytes(data[5..7].try_into().ok()?) as usize;
        if len > CELL_PAYLOAD {
            return None;
        }
        Some(Cell { circ_id, cmd, payload: data[7..7 + len].to_vec() })
    }
}

/// Incremental deframer for cell streams.
#[derive(Debug, Default)]
pub struct CellBuf {
    buf: Vec<u8>,
}

impl CellBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        CellBuf::default()
    }

    /// Feeds stream bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pops the next complete cell, if any.
    pub fn next_cell(&mut self) -> Option<Cell> {
        if self.buf.len() < CELL_SIZE {
            return None;
        }
        let frame: [u8; CELL_SIZE] = self.buf[..CELL_SIZE].try_into().expect("checked length");
        self.buf.drain(..CELL_SIZE);
        Cell::decode(&frame)
    }
}

/// One onion layer: the keys and counters shared with one hop.
#[derive(Debug, Clone)]
pub struct OnionLayer {
    key: [u8; 32],
    fwd_counter: u64,
    bwd_counter: u64,
}

impl OnionLayer {
    /// Creates a layer from a shared secret.
    pub fn new(key: [u8; 32]) -> Self {
        OnionLayer { key, fwd_counter: 0, bwd_counter: 0 }
    }

    fn apply(&self, counter: u64, dir: u8, data: &mut [u8]) {
        let mut nonce = [0u8; 16];
        nonce[0] = dir;
        nonce[8..16].copy_from_slice(&counter.to_be_bytes());
        Ctr::new(Aes::new(KeySize::Aes256, &self.key).expect("32-byte key"), nonce).apply(data);
    }

    /// Applies the forward-direction transform (client → exit) and
    /// advances the forward counter.
    pub fn forward(&mut self, data: &mut [u8]) {
        let c = self.fwd_counter;
        self.fwd_counter += 1;
        self.apply(c, 0x0f, data);
    }

    /// Applies the backward-direction transform (exit → client) and
    /// advances the backward counter.
    pub fn backward(&mut self, data: &mut [u8]) {
        let c = self.bwd_counter;
        self.bwd_counter += 1;
        self.apply(c, 0xb0, data);
    }
}

/// Builds a recognized relay payload: RECOGNIZED ‖ stream_id ‖ cmd ‖ len ‖ data.
pub fn relay_payload(stream_id: u16, rcmd: u8, data: &[u8]) -> Vec<u8> {
    assert!(data.len() <= RELAY_DATA_MAX, "relay data too large");
    let mut out = Vec::with_capacity(7 + data.len());
    out.extend_from_slice(&RECOGNIZED);
    out.extend_from_slice(&stream_id.to_be_bytes());
    out.push(rcmd);
    out.extend_from_slice(&(data.len() as u16).to_be_bytes());
    out.extend_from_slice(data);
    out
}

/// Parses a recognized relay payload into (stream_id, cmd, data).
pub fn parse_relay_payload(payload: &[u8]) -> Option<(u16, u8, &[u8])> {
    if payload.len() < 7 || payload[0..2] != RECOGNIZED {
        return None;
    }
    let stream_id = u16::from_be_bytes(payload[2..4].try_into().ok()?);
    let rcmd = payload[4];
    let len = u16::from_be_bytes(payload[5..7].try_into().ok()?) as usize;
    if payload.len() < 7 + len {
        return None;
    }
    Some((stream_id, rcmd, &payload[7..7 + len]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_roundtrip() {
        let cell = Cell::new(42, cmd::RELAY, vec![1, 2, 3]);
        let wire = cell.encode();
        assert_eq!(wire.len(), CELL_SIZE);
        let frame: [u8; CELL_SIZE] = wire.try_into().unwrap();
        assert_eq!(Cell::decode(&frame).unwrap(), cell);
    }

    #[test]
    fn cellbuf_reassembles_fragments() {
        let cells: Vec<Cell> = (0..5).map(|i| Cell::new(i, cmd::RELAY, vec![i as u8; 10])).collect();
        let mut wire = Vec::new();
        for c in &cells {
            wire.extend(c.encode());
        }
        let mut buf = CellBuf::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(97) {
            buf.push(chunk);
            while let Some(c) = buf.next_cell() {
                got.push(c);
            }
        }
        assert_eq!(got, cells);
    }

    #[test]
    fn three_layer_onion_roundtrip() {
        let mut client_layers = [
            OnionLayer::new([1; 32]),
            OnionLayer::new([2; 32]),
            OnionLayer::new([3; 32]),
        ];
        let mut hop_layers = [
            OnionLayer::new([1; 32]),
            OnionLayer::new([2; 32]),
            OnionLayer::new([3; 32]),
        ];
        let plain = relay_payload(7, relay_cmd::DATA, b"hello onion");
        // Client wraps: outermost layer is hop 1's.
        let mut wrapped = plain.clone();
        for layer in client_layers.iter_mut().rev() {
            layer.forward(&mut wrapped);
        }
        // Hops peel in order.
        for (i, hop) in hop_layers.iter_mut().enumerate() {
            assert!(parse_relay_payload(&wrapped).is_none() || i == 3);
            hop.forward(&mut wrapped);
        }
        let (sid, rcmd, data) = parse_relay_payload(&wrapped).unwrap();
        assert_eq!((sid, rcmd, data), (7, relay_cmd::DATA, b"hello onion".as_slice()));

        // Backward: exit wraps, client peels.
        let plain_b = relay_payload(7, relay_cmd::DATA, b"reply");
        let mut wrapped_b = plain_b.clone();
        // Each hop encrypts backward in path order exit→bridge.
        for hop in hop_layers.iter_mut().rev() {
            hop.backward(&mut wrapped_b);
        }
        for layer in client_layers.iter_mut() {
            layer.backward(&mut wrapped_b);
        }
        let (sid, rcmd, data) = parse_relay_payload(&wrapped_b).unwrap();
        assert_eq!((sid, rcmd, data), (7, relay_cmd::DATA, b"reply".as_slice()));
    }

    #[test]
    fn counters_keep_cells_independent() {
        let mut a = OnionLayer::new([9; 32]);
        let mut b = OnionLayer::new([9; 32]);
        let mut x1 = vec![0u8; 32];
        let mut x2 = vec![0u8; 32];
        a.forward(&mut x1);
        a.forward(&mut x2);
        assert_ne!(x1, x2, "same plaintext must differ across cells");
        // Peer with synced counters can decrypt both.
        b.forward(&mut x1);
        b.forward(&mut x2);
        assert_eq!(x1, vec![0u8; 32]);
        assert_eq!(x2, vec![0u8; 32]);
    }

    #[test]
    fn relay_payload_parse_rejects_unrecognized() {
        assert!(parse_relay_payload(&[0, 0, 1, 2, 3, 4, 5, 6]).is_none());
        assert!(parse_relay_payload(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "cell payload too large")]
    fn oversized_cell_panics() {
        let _ = Cell::new(1, cmd::RELAY, vec![0; CELL_PAYLOAD + 1]);
    }
}
