//! The Tor directory server: serves the network consensus over HTTP.
//! Its only measurable role in the reproduction is the bootstrap
//! transfer the client must complete before building a circuit — a large
//! part of Tor Browser's slow first start.

use std::collections::HashMap;

use sc_netproto::http::{HttpMessage, HttpParser, HttpResponse};
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;

/// Default directory port.
pub const DIR_PORT: u16 = 9030;

/// Size of the served consensus document (bytes). Real microdescriptor
/// consensuses are in the single-digit megabytes; we default to a scaled
/// 600 KB so bootstrap costs realistic round trips without dominating
/// multi-scenario test time.
pub const DEFAULT_CONSENSUS_LEN: usize = 600 * 1024;

/// The directory server app.
pub struct DirectoryServer {
    consensus_len: usize,
    parsers: HashMap<TcpHandle, HttpParser>,
    /// Consensus documents served (diagnostics).
    pub served: u64,
}

impl DirectoryServer {
    /// Creates a directory serving a consensus of the default size.
    pub fn new() -> Self {
        Self::with_consensus_len(DEFAULT_CONSENSUS_LEN)
    }

    /// Creates a directory serving a consensus of `len` bytes.
    pub fn with_consensus_len(len: usize) -> Self {
        DirectoryServer { consensus_len: len, parsers: HashMap::new(), served: 0 }
    }
}

impl Default for DirectoryServer {
    fn default() -> Self {
        Self::new()
    }
}

impl App for DirectoryServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(DIR_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.parsers.insert(h, HttpParser::new());
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                let Some(parser) = self.parsers.get_mut(&h) else { return };
                let Ok(msgs) = parser.push(&data) else {
                    ctx.tcp_abort(h);
                    return;
                };
                for msg in msgs {
                    if let HttpMessage::Request(req) = msg {
                        if req.method == "GET" && req.target.starts_with("/certs") {
                            // Authority certificates: small but a full
                            // round trip of the bootstrap sequence.
                            let body = vec![b'c'; 64 * 1024];
                            let resp = HttpResponse::new(200, body)
                                .header("Content-Type", "text/plain");
                            ctx.tcp_send(h, &resp.encode());
                            self.served += 1;
                        } else if req.method == "GET"
                            && (req.target.starts_with("/consensus")
                                || req.target.starts_with("/descriptors"))
                        {
                            // A synthetic consensus: repeated descriptor
                            // lines, compressible and printable like the
                            // real thing.
                            let line = b"r relay4096 9001 onion-router descriptor line\n";
                            let mut body = Vec::with_capacity(self.consensus_len);
                            while body.len() < self.consensus_len {
                                body.extend_from_slice(line);
                            }
                            body.truncate(self.consensus_len);
                            let resp = HttpResponse::new(200, body)
                                .header("Content-Type", "text/plain");
                            ctx.tcp_send(h, &resp.encode());
                            self.served += 1;
                        } else {
                            ctx.tcp_send(h, &HttpResponse::new(404, Vec::new()).encode());
                        }
                    }
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                self.parsers.remove(&h);
            }
            _ => {}
        }
    }
}
