//! An onion router: accepts circuits over TCP, peels/adds one onion
//! layer, extends circuits toward other relays, and (as exit) opens
//! streams to targets.

use std::collections::HashMap;

use sc_crypto::dh::{PrivateKey, PublicKey};
use sc_netproto::socks::TargetAddr;
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;

use super::cells::{
    Cell, CellBuf, OnionLayer, RELAY_DATA_MAX, cmd, parse_relay_payload, relay_cmd, relay_payload,
};
use crate::names::NameMap;

/// Default OR port.
pub const OR_PORT: u16 = 9001;

#[derive(Debug)]
struct Circuit {
    /// Link toward the client.
    prev: (TcpHandle, u32),
    /// This hop's onion layer.
    layer: OnionLayer,
    /// Link toward the next relay, once extended.
    next: Option<(TcpHandle, u32)>,
    /// Relay payloads awaiting the next-hop connection.
    pending_next: Vec<Vec<u8>>,
    /// Exit streams: stream id → upstream connection.
    streams: HashMap<u16, TcpHandle>,
}

#[derive(Debug, Default)]
struct OutConn {
    connected: bool,
    pending_cells: Vec<Cell>,
}

/// An onion router app. Every relay in the simulated Tor network — the
/// bridge's OR half, middles, and exits — is an instance of this.
pub struct OrRelay {
    port: u16,
    entropy: u64,
    /// Exit-side DNS view for resolving BEGIN targets by name.
    names: NameMap,
    /// Cell reassembly per connection (both inbound and outbound links).
    bufs: HashMap<TcpHandle, CellBuf>,
    /// (link, circ id on that link) → circuit index.
    by_link: HashMap<(TcpHandle, u32), usize>,
    circuits: Vec<Circuit>,
    /// Outbound relay links.
    out_conns: HashMap<TcpHandle, OutConn>,
    /// Upstream (exit) connections: handle → (circuit, stream id).
    upstreams: HashMap<TcpHandle, (usize, u16)>,
    /// Buffered data for upstreams still connecting.
    upstream_pending: HashMap<TcpHandle, Vec<u8>>,
    next_out_circ: u32,
    /// Circuits created through this relay (diagnostics).
    pub circuits_created: u64,
    /// Exit streams opened (diagnostics).
    pub streams_opened: u64,
}

impl OrRelay {
    /// Creates a relay listening on `port`. `names` is only consulted in
    /// the exit role (BEGIN with a domain target).
    pub fn new(port: u16, entropy: u64, names: NameMap) -> Self {
        OrRelay {
            port,
            entropy,
            names,
            bufs: HashMap::new(),
            by_link: HashMap::new(),
            circuits: Vec::new(),
            out_conns: HashMap::new(),
            upstreams: HashMap::new(),
            upstream_pending: HashMap::new(),
            next_out_circ: 1,
            circuits_created: 0,
            streams_opened: 0,
        }
    }

    fn send_cell(&mut self, conn: TcpHandle, cell: Cell, ctx: &mut Ctx<'_>) {
        if let Some(out) = self.out_conns.get_mut(&conn) {
            if !out.connected {
                out.pending_cells.push(cell);
                return;
            }
        }
        ctx.tcp_send(conn, &cell.encode());
    }

    /// Originates a backward relay payload at this hop (EXTENDED,
    /// CONNECTED, DATA, END): one layer of our own encryption.
    fn originate_backward(&mut self, circ_idx: usize, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        let (prev_conn, prev_circ) = self.circuits[circ_idx].prev;
        let mut data = payload;
        self.circuits[circ_idx].layer.backward(&mut data);
        self.send_cell(prev_conn, Cell::new(prev_circ, cmd::RELAY, data), ctx);
    }

    fn handle_recognized(&mut self, circ_idx: usize, stream_id: u16, rcmd: u8, data: &[u8], ctx: &mut Ctx<'_>) {
        match rcmd {
            relay_cmd::EXTEND => {
                // data: addr(4) port(2) client_pub(8)
                if data.len() != 14 {
                    return;
                }
                let addr = Addr::new(data[0], data[1], data[2], data[3]);
                let port = u16::from_be_bytes([data[4], data[5]]);
                let next = ctx.tcp_connect(SocketAddr::new(addr, port));
                self.out_conns.insert(next, OutConn::default());
                self.bufs.insert(next, CellBuf::new());
                let out_circ = self.next_out_circ;
                self.next_out_circ += 1;
                self.circuits[circ_idx].next = Some((next, out_circ));
                self.by_link.insert((next, out_circ), circ_idx);
                let create = Cell::new(out_circ, cmd::CREATE, data[6..14].to_vec());
                self.send_cell(next, create, ctx);
            }
            relay_cmd::BEGIN => {
                // data: SOCKS-format target address (IP or domain).
                let Some((target, _)) = TargetAddr::decode(data) else { return };
                let dest = match &target {
                    TargetAddr::Ip(a, p) => SocketAddr::new(*a, *p),
                    TargetAddr::Domain(name, p) => match self.names.resolve(name) {
                        Some(a) => SocketAddr::new(a, *p),
                        None => {
                            self.originate_backward(
                                circ_idx,
                                relay_payload(stream_id, relay_cmd::END, &[]),
                                ctx,
                            );
                            return;
                        }
                    },
                };
                let upstream = ctx.tcp_connect(dest);
                self.circuits[circ_idx].streams.insert(stream_id, upstream);
                self.upstreams.insert(upstream, (circ_idx, stream_id));
                self.upstream_pending.insert(upstream, Vec::new());
                self.streams_opened += 1;
            }
            relay_cmd::DATA => {
                if let Some(&upstream) = self.circuits[circ_idx].streams.get(&stream_id) {
                    if let Some(pending) = self.upstream_pending.get_mut(&upstream) {
                        pending.extend_from_slice(data);
                    } else {
                        ctx.tcp_send(upstream, data);
                    }
                }
            }
            relay_cmd::END => {
                if let Some(upstream) = self.circuits[circ_idx].streams.remove(&stream_id) {
                    ctx.tcp_close(upstream);
                    self.upstreams.remove(&upstream);
                }
            }
            _ => {}
        }
    }

    fn on_cell(&mut self, conn: TcpHandle, cell: Cell, ctx: &mut Ctx<'_>) {
        let key = (conn, cell.circ_id);
        if let Some(&circ_idx) = self.by_link.get(&key) {
            let is_forward = self.circuits[circ_idx].prev == key;
            if is_forward {
                match cell.cmd {
                    cmd::RELAY => {
                        let mut payload = cell.payload;
                        self.circuits[circ_idx].layer.forward(&mut payload);
                        if let Some((sid, rcmd, data)) = parse_relay_payload(&payload) {
                            let data = data.to_vec();
                            self.handle_recognized(circ_idx, sid, rcmd, &data, ctx);
                        } else if let Some((next, out_circ)) = self.circuits[circ_idx].next {
                            let connected = self
                                .out_conns
                                .get(&next)
                                .is_some_and(|o| o.connected);
                            if connected {
                                self.send_cell(next, Cell::new(out_circ, cmd::RELAY, payload), ctx);
                            } else {
                                self.circuits[circ_idx].pending_next.push(payload);
                            }
                        } else {
                            // Not for us and nowhere to forward: the cell
                            // raced circuit extension; queue it.
                            self.circuits[circ_idx].pending_next.push(payload);
                        }
                    }
                    cmd::DESTROY => {
                        if let Some((next, out_circ)) = self.circuits[circ_idx].next {
                            self.send_cell(next, Cell::new(out_circ, cmd::DESTROY, vec![]), ctx);
                        }
                        for (_, upstream) in self.circuits[circ_idx].streams.drain() {
                            ctx.tcp_close(upstream);
                            self.upstreams.remove(&upstream);
                        }
                    }
                    _ => {}
                }
            } else {
                // Backward direction (from the next hop).
                match cell.cmd {
                    cmd::CREATED => {
                        // Our EXTEND completed: relay EXTENDED to client,
                        // and flush any cells that raced the extension.
                        self.originate_backward(
                            circ_idx,
                            relay_payload(0, relay_cmd::EXTENDED, &cell.payload),
                            ctx,
                        );
                        let pending = std::mem::take(&mut self.circuits[circ_idx].pending_next);
                        if let Some((next, out_circ)) = self.circuits[circ_idx].next {
                            for payload in pending {
                                self.send_cell(next, Cell::new(out_circ, cmd::RELAY, payload), ctx);
                            }
                        }
                    }
                    cmd::RELAY => {
                        let mut payload = cell.payload;
                        self.circuits[circ_idx].layer.backward(&mut payload);
                        let (prev_conn, prev_circ) = self.circuits[circ_idx].prev;
                        self.send_cell(prev_conn, Cell::new(prev_circ, cmd::RELAY, payload), ctx);
                    }
                    _ => {}
                }
            }
            return;
        }

        // Unknown circuit: CREATE starts one.
        if cell.cmd == cmd::CREATE {
            let Ok(pub_bytes): Result<[u8; 8], _> = cell.payload.as_slice().try_into() else {
                return;
            };
            let Ok(client_pub) = PublicKey::from_bytes(pub_bytes) else { return };
            let dh = PrivateKey::from_entropy(self.entropy ^ (cell.circ_id as u64) << 16 ^ conn.0 as u64);
            let shared = dh.agree(&client_pub);
            let circ_idx = self.circuits.len();
            self.circuits.push(Circuit {
                prev: key,
                layer: OnionLayer::new(shared),
                next: None,
                pending_next: Vec::new(),
                streams: HashMap::new(),
            });
            self.by_link.insert(key, circ_idx);
            self.circuits_created += 1;
            let created = Cell::new(cell.circ_id, cmd::CREATED, dh.public_key().to_bytes().to_vec());
            self.send_cell(conn, created, ctx);
        }
    }
}

impl App for OrRelay {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.port);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };

        // Exit upstream side.
        if let Some(&(circ_idx, stream_id)) = self.upstreams.get(&h) {
            match tcp_ev {
                TcpEvent::Connected => {
                    if let Some(pending) = self.upstream_pending.remove(&h) {
                        if !pending.is_empty() {
                            ctx.tcp_send(h, &pending);
                        }
                    }
                    self.originate_backward(
                        circ_idx,
                        relay_payload(stream_id, relay_cmd::CONNECTED, &[]),
                        ctx,
                    );
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    for chunk in data.chunks(RELAY_DATA_MAX) {
                        self.originate_backward(
                            circ_idx,
                            relay_payload(stream_id, relay_cmd::DATA, chunk),
                            ctx,
                        );
                    }
                }
                TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                    self.originate_backward(
                        circ_idx,
                        relay_payload(stream_id, relay_cmd::END, &[]),
                        ctx,
                    );
                    self.circuits[circ_idx].streams.remove(&stream_id);
                    self.upstreams.remove(&h);
                }
                _ => {}
            }
            return;
        }

        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.bufs.insert(h, CellBuf::new());
            }
            TcpEvent::Connected => {
                if let Some(out) = self.out_conns.get_mut(&h) {
                    out.connected = true;
                    let pending = std::mem::take(&mut out.pending_cells);
                    for cell in pending {
                        ctx.tcp_send(h, &cell.encode());
                    }
                }
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                let cells = {
                    let Some(buf) = self.bufs.get_mut(&h) else { return };
                    buf.push(&data);
                    let mut cells = Vec::new();
                    while let Some(c) = buf.next_cell() {
                        cells.push(c);
                    }
                    cells
                };
                for cell in cells {
                    self.on_cell(h, cell, ctx);
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                self.bufs.remove(&h);
            }
            _ => {}
        }
    }
}
