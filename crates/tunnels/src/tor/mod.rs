//! The Tor subsystem: cells with onion encryption, onion routers, the
//! directory server, the meek pluggable transport, and the client.
//!
//! A minimal deployment is one [`client::TorClient`] (on the user's
//! machine), a bridge node running [`meek::MeekGateway`] +
//! [`relay::OrRelay`], a middle [`relay::OrRelay`], an exit
//! [`relay::OrRelay`] (constructed with the outside world's
//! [`NameMap`](crate::names::NameMap)), and a
//! [`directory::DirectoryServer`].

pub mod cells;
pub mod client;
pub mod directory;
pub mod meek;
pub mod relay;

pub use cells::{Cell, CellBuf, OnionLayer};
pub use client::{TorClient, TorConfig, TOR_SOCKS_PORT};
pub use directory::{DirectoryServer, DIR_PORT};
pub use meek::{MeekGateway, MEEK_PORT};
pub use relay::{OrRelay, OR_PORT};
