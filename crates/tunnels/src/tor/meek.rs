//! The meek pluggable transport, server side: an HTTPS endpoint that looks
//! like an ordinary CDN-fronted web service. Clients POST their upstream
//! cell bytes and receive pending downstream bytes in the response — a
//! long-poll loop whose regular cadence is exactly what the simulated
//! GFW's behavioral detector fingerprints.
//!
//! The gateway bridges each meek session onto a loopback TCP connection to
//! the OR relay running on the same node (the Tor bridge).

use std::collections::HashMap;

use sc_netproto::http::{HttpMessage, HttpParser, HttpRequest, HttpResponse};
use sc_netproto::tls::TlsServer;
use sc_simnet::addr::SocketAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::SimDuration;

use super::relay::OR_PORT;

/// The HTTPS port the gateway fronts on.
pub const MEEK_PORT: u16 = 443;
/// How long the gateway holds a poll open waiting for downstream bytes.
pub const HOLD_TIME: SimDuration = SimDuration::from_millis(300);
/// The request path meek uses.
pub const MEEK_PATH: &str = "/meek";

struct ClientConn {
    tls: TlsServer,
    http: HttpParser,
    /// Session this connection's pending poll belongs to, if holding.
    holding_for: Option<u64>,
}

struct Session {
    /// Loopback connection into the co-located OR relay.
    or_conn: TcpHandle,
    or_connected: bool,
    /// Bytes awaiting upstream transmission until the OR link connects.
    upstream_pending: Vec<u8>,
    /// Downstream bytes awaiting the next poll.
    downstream: Vec<u8>,
    /// Connection currently holding an open poll, if any.
    held_poll: Option<TcpHandle>,
}

/// The meek server/gateway app. Runs on the bridge node next to an
/// [`OrRelay`](super::relay::OrRelay).
pub struct MeekGateway {
    entropy: u64,
    conns: HashMap<TcpHandle, ClientConn>,
    sessions: HashMap<u64, Session>,
    or_to_session: HashMap<TcpHandle, u64>,
    hold_seq: u64,
    /// Polls served (diagnostics).
    pub polls: u64,
}

impl MeekGateway {
    /// Creates a gateway.
    pub fn new(entropy: u64) -> Self {
        MeekGateway {
            entropy,
            conns: HashMap::new(),
            sessions: HashMap::new(),
            or_to_session: HashMap::new(),
            hold_seq: 0,
            polls: 0,
        }
    }

    fn respond(&mut self, conn: TcpHandle, session_id: u64, ctx: &mut Ctx<'_>) {
        let Some(session) = self.sessions.get_mut(&session_id) else { return };
        let body = std::mem::take(&mut session.downstream);
        session.held_poll = None;
        let resp = HttpResponse::new(200, body).header("Content-Type", "application/octet-stream");
        let wire = {
            let Some(c) = self.conns.get_mut(&conn) else { return };
            c.holding_for = None;
            c.tls.send(&resp.encode())
        };
        ctx.tcp_send(conn, &wire);
        self.polls += 1;
    }

    fn handle_request(&mut self, conn: TcpHandle, req: HttpRequest, ctx: &mut Ctx<'_>) {
        if req.method != "POST" || !req.target.starts_with(MEEK_PATH) {
            let wire = {
                let Some(c) = self.conns.get_mut(&conn) else { return };
                c.tls.send(&HttpResponse::new(404, Vec::new()).encode())
            };
            ctx.tcp_send(conn, &wire);
            return;
        }
        let session_id: u64 = req
            .header_value("X-Session-Id")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // Create the session (and its loopback OR link) on first use.
        if !self.sessions.contains_key(&session_id) {
            let or_conn = ctx.tcp_connect(SocketAddr::new(ctx.addr(), OR_PORT));
            self.or_to_session.insert(or_conn, session_id);
            self.sessions.insert(
                session_id,
                Session {
                    or_conn,
                    or_connected: false,
                    upstream_pending: Vec::new(),
                    downstream: Vec::new(),
                    held_poll: None,
                },
            );
        }
        let session = self.sessions.get_mut(&session_id).expect("just inserted");
        // Ship upstream bytes into the OR link.
        if !req.body.is_empty() {
            if session.or_connected {
                ctx.tcp_send(session.or_conn, &req.body);
            } else {
                session.upstream_pending.extend_from_slice(&req.body);
            }
        }
        // Answer: immediately if downstream bytes wait, else hold.
        if !session.downstream.is_empty() {
            self.respond(conn, session_id, ctx);
        } else {
            session.held_poll = Some(conn);
            if let Some(c) = self.conns.get_mut(&conn) {
                c.holding_for = Some(session_id);
            }
            self.hold_seq += 1;
            // Token encodes the session so the timer can release the hold.
            ctx.set_timer(HOLD_TIME, session_id);
        }
    }
}

impl App for MeekGateway {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(MEEK_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::TimerFired(session_id) => {
                // Release a held poll even if no data arrived (empty 200),
                // so the client's poll loop keeps its cadence.
                let held = self
                    .sessions
                    .get(&session_id)
                    .and_then(|s| s.held_poll);
                if let Some(conn) = held {
                    self.respond(conn, session_id, ctx);
                }
            }
            AppEvent::Tcp(h, tcp_ev) => {
                // OR-link side.
                if let Some(&session_id) = self.or_to_session.get(&h) {
                    match tcp_ev {
                        TcpEvent::Connected => {
                            let Some(s) = self.sessions.get_mut(&session_id) else { return };
                            s.or_connected = true;
                            let pending = std::mem::take(&mut s.upstream_pending);
                            if !pending.is_empty() {
                                ctx.tcp_send(h, &pending);
                            }
                        }
                        TcpEvent::DataReceived => {
                            let data = ctx.tcp_recv_all(h);
                            let held = {
                                let Some(s) = self.sessions.get_mut(&session_id) else { return };
                                s.downstream.extend_from_slice(&data);
                                s.held_poll
                            };
                            if let Some(conn) = held {
                                self.respond(conn, session_id, ctx);
                            }
                        }
                        TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                            self.or_to_session.remove(&h);
                            self.sessions.remove(&session_id);
                        }
                        _ => {}
                    }
                    return;
                }
                // HTTPS client side.
                match tcp_ev {
                    TcpEvent::Accepted { .. } => {
                        self.conns.insert(
                            h,
                            ClientConn {
                                tls: TlsServer::new(self.entropy ^ h.0 as u64),
                                http: HttpParser::new(),
                                holding_for: None,
                            },
                        );
                    }
                    TcpEvent::DataReceived => {
                        let data = ctx.tcp_recv_all(h);
                        let (wire_out, requests) = {
                            let Some(c) = self.conns.get_mut(&h) else { return };
                            let Ok(out) = c.tls.on_bytes(&data) else {
                                ctx.tcp_abort(h);
                                return;
                            };
                            let mut requests = Vec::new();
                            if !out.plaintext.is_empty() {
                                if let Ok(msgs) = c.http.push(&out.plaintext) {
                                    for m in msgs {
                                        if let HttpMessage::Request(r) = m {
                                            requests.push(r);
                                        }
                                    }
                                }
                            }
                            (out.wire, requests)
                        };
                        if !wire_out.is_empty() {
                            ctx.tcp_send(h, &wire_out);
                        }
                        for req in requests {
                            self.handle_request(h, req, ctx);
                        }
                    }
                    TcpEvent::PeerClosed | TcpEvent::Reset => {
                        if let Some(c) = self.conns.remove(&h) {
                            if let Some(sid) = c.holding_for {
                                if let Some(s) = self.sessions.get_mut(&sid) {
                                    s.held_poll = None;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
