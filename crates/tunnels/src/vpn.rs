//! Packet-level VPNs: the machinery shared by native VPN (PPTP, L2TP) and
//! OpenVPN — control-channel handshake, per-packet sealing, full-tunnel
//! capture on the client, and NAT + forwarding on the server.
//!
//! The paper's observations these reproduce:
//! * native VPN "forwards all traffic to remote VPN servers outside China,
//!   significantly increasing access latency to domestic Internet
//!   services" — the client installs a **full tunnel**;
//! * VPN traffic is classified by the GFW as PPTP/L2TP/OpenVPN (legal,
//!   registered classes since 2015) and passes with baseline loss only.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use sc_crypto::dh::{PrivateKey, PublicKey};
use sc_crypto::hmac::{ct_eq, hmac_sha256};
use sc_crypto::modes::Ctr;
use sc_crypto::{Aes, KeySize};
use sc_simnet::addr::{Addr, SocketAddr};
use sc_simnet::api::{App, AppEvent, PacketTunnel, TcpEvent, TcpHandle, UdpHandle};
use sc_simnet::packet::{L4, Packet, proto};
use sc_simnet::sim::Ctx;
use sc_simnet::time::SimTime;

use crate::status::{TunnelState, TunnelStatus};

/// PPTP control port.
pub const PPTP_PORT: u16 = 1723;
/// L2TP port.
pub const L2TP_PORT: u16 = 1701;
/// OpenVPN port.
pub const OPENVPN_PORT: u16 = 1194;
/// NAT port range used by VPN servers.
pub const NAT_PORT_LO: u16 = 20_000;
/// Upper bound of the NAT port range.
pub const NAT_PORT_HI: u16 = 29_999;

/// OpenVPN wire opcodes (shifted, as on the real wire).
pub mod opcode {
    /// P_CONTROL_HARD_RESET_CLIENT_V2.
    pub const HARD_RESET_CLIENT: u8 = 0x38;
    /// P_CONTROL_HARD_RESET_SERVER_V2.
    pub const HARD_RESET_SERVER: u8 = 0x40;
    /// P_DATA_V1.
    pub const DATA: u8 = 0x30;
}

/// Which VPN flavour a client/server pair speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VpnVariant {
    /// PPTP: TCP control on 1723, GRE (protocol 47) data channel.
    Pptp,
    /// L2TP/IPsec: UDP control on 1701, ESP (protocol 50) data channel.
    L2tp,
    /// OpenVPN: UDP 1194 control + data with opcode framing.
    OpenVpn,
}

impl VpnVariant {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            VpnVariant::Pptp => "pptp",
            VpnVariant::L2tp => "l2tp",
            VpnVariant::OpenVpn => "openvpn",
        }
    }

    /// Extra bytes this encapsulation adds per data packet on the wire
    /// (sealing overhead + any opcode byte).
    pub fn per_packet_overhead(self) -> usize {
        match self {
            // nonce(8) + tag(8)
            VpnVariant::Pptp | VpnVariant::L2tp => 16,
            // opcode(1) + nonce(8) + tag(8)
            VpnVariant::OpenVpn => 17,
        }
    }
}

// --- per-packet sealing -------------------------------------------------

/// Seals `plain` with `key`: nonce(8) || ctr-ciphertext || hmac-tag(8).
pub fn seal_packet(key: &[u8; 32], nonce: u64, plain: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plain.len() + 16);
    out.extend_from_slice(&nonce.to_be_bytes());
    let mut nblock = [0u8; 16];
    nblock[..8].copy_from_slice(&nonce.to_be_bytes());
    let mut ct = plain.to_vec();
    Ctr::new(Aes::new(KeySize::Aes256, key).expect("32-byte key"), nblock).apply(&mut ct);
    out.extend_from_slice(&ct);
    let tag = hmac_sha256(key, &out);
    out.extend_from_slice(&tag[..8]);
    out
}

/// Opens a sealed packet; `None` on any authentication failure.
pub fn open_packet(key: &[u8; 32], data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 16 {
        return None;
    }
    let (body, tag) = data.split_at(data.len() - 8);
    let expect = hmac_sha256(key, body);
    if !ct_eq(&expect[..8], tag) {
        return None;
    }
    let mut nblock = [0u8; 16];
    nblock[..8].copy_from_slice(&body[..8]);
    let mut pt = body[8..].to_vec();
    Ctr::new(Aes::new(KeySize::Aes256, key).expect("32-byte key"), nblock).apply(&mut pt);
    Some(pt)
}

// --- NAT ------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NatFlow {
    client: Addr,
    protocol: u8,
    inner_src: SocketAddr,
    inner_dst: SocketAddr,
}

#[derive(Debug, Clone, Copy)]
struct NatEntry {
    flow: NatFlow,
}

/// A port-rewriting NAT for VPN servers.
#[derive(Debug, Default)]
pub struct Nat {
    by_port: HashMap<u16, NatEntry>,
    by_flow: HashMap<NatFlow, u16>,
    next_port: u16,
}

impl Nat {
    /// Creates an empty NAT.
    pub fn new() -> Self {
        Nat { by_port: HashMap::new(), by_flow: HashMap::new(), next_port: NAT_PORT_LO }
    }

    /// Translates an outbound inner packet from `client`: rewrites the
    /// source to `(public_addr, nat_port)` and returns the packet to
    /// forward. Returns `None` for packets without ports.
    pub fn outbound(&mut self, client: Addr, public_addr: Addr, mut inner: Packet) -> Option<Packet> {
        let inner_src = inner.src_socket()?;
        let inner_dst = inner.dst_socket()?;
        let flow = NatFlow { client, protocol: inner.l4.protocol(), inner_src, inner_dst };
        let port = match self.by_flow.get(&flow) {
            Some(&p) => p,
            None => {
                let p = self.alloc_port();
                self.by_flow.insert(flow, p);
                self.by_port.insert(p, NatEntry { flow });
                p
            }
        };
        inner.src = public_addr;
        match &mut inner.l4 {
            L4::Tcp(t) => t.src_port = port,
            L4::Udp(u) => u.src_port = port,
            L4::Raw { .. } => return None,
        }
        Some(inner)
    }

    /// Translates an inbound reply addressed to a NAT port: rewrites the
    /// destination back to the client's inner socket. Returns the client
    /// address and the restored packet.
    pub fn inbound(&mut self, mut pkt: Packet) -> Option<(Addr, Packet)> {
        let dst_port = pkt.dst_socket()?.port;
        let entry = self.by_port.get(&dst_port)?;
        let flow = entry.flow;
        pkt.dst = flow.inner_src.addr;
        match &mut pkt.l4 {
            L4::Tcp(t) => t.dst_port = flow.inner_src.port,
            L4::Udp(u) => u.dst_port = flow.inner_src.port,
            L4::Raw { .. } => return None,
        }
        Some((flow.client, pkt))
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = if self.next_port >= NAT_PORT_HI { NAT_PORT_LO } else { self.next_port + 1 };
            if !self.by_port.contains_key(&p) {
                return p;
            }
        }
    }

    /// Active translations (diagnostics / memory model).
    pub fn len(&self) -> usize {
        self.by_port.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_port.is_empty()
    }
}

// --- encapsulation ----------------------------------------------------------

fn encap_packet(variant: VpnVariant, from: Addr, to: Addr, sealed: Vec<u8>) -> Packet {
    match variant {
        VpnVariant::Pptp => Packet::raw(from, to, proto::GRE, Bytes::from(sealed)),
        VpnVariant::L2tp => Packet::raw(from, to, proto::ESP, Bytes::from(sealed)),
        VpnVariant::OpenVpn => {
            let mut framed = BytesMut::with_capacity(sealed.len() + 1);
            framed.put_u8(opcode::DATA);
            framed.put_slice(&sealed);
            Packet::udp(
                SocketAddr::new(from, OPENVPN_PORT),
                SocketAddr::new(to, OPENVPN_PORT),
                framed.freeze(),
            )
        }
    }
}

fn decap_payload(variant: VpnVariant, pkt: &Packet) -> Option<Bytes> {
    match (variant, &pkt.l4) {
        (VpnVariant::Pptp, L4::Raw { protocol: proto::GRE, payload }) => Some(payload.clone()),
        (VpnVariant::L2tp, L4::Raw { protocol: proto::ESP, payload }) => Some(payload.clone()),
        (VpnVariant::OpenVpn, L4::Udp(u)) if u.payload.first() == Some(&opcode::DATA) => {
            Some(u.payload.slice(1..))
        }
        _ => None,
    }
}

// --- client ---------------------------------------------------------------

/// The full-tunnel packet capture installed once the handshake completes.
struct VpnTunnel {
    variant: VpnVariant,
    own: Addr,
    server: Addr,
    key: [u8; 32],
    nonce: u64,
}

impl PacketTunnel for VpnTunnel {
    fn name(&self) -> &str {
        self.variant.name()
    }

    fn wrap(&mut self, pkt: Packet, _now: SimTime) -> Vec<Packet> {
        // Never capture traffic to the VPN server itself (control channel
        // and our own encapsulated output) or loopback deliveries of
        // already-decapsulated inbound packets.
        if pkt.dst == self.server || pkt.dst == self.own {
            return vec![pkt];
        }
        self.nonce += 1;
        let sealed = seal_packet(&self.key, self.nonce, &pkt.encode());
        vec![encap_packet(self.variant, self.own, self.server, sealed)]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientPhase {
    Idle,
    Handshaking,
    Up,
}

/// A VPN client app: runs the control handshake, installs the full tunnel,
/// and decapsulates inbound data.
pub struct VpnClient {
    variant: VpnVariant,
    server: Addr,
    status: TunnelStatus,
    phase: ClientPhase,
    dh: Option<PrivateKey>,
    key: Option<[u8; 32]>,
    control_tcp: Option<TcpHandle>,
    control_udp: Option<UdpHandle>,
    entropy: u64,
}

impl VpnClient {
    /// Creates a client that will connect to `server` and report readiness
    /// on `status`.
    pub fn new(variant: VpnVariant, server: Addr, entropy: u64, status: TunnelStatus) -> Self {
        VpnClient {
            variant,
            server,
            status,
            phase: ClientPhase::Idle,
            dh: None,
            key: None,
            control_tcp: None,
            control_udp: None,
            entropy,
        }
    }

    fn hello_payload(&mut self) -> Vec<u8> {
        let dh = PrivateKey::from_entropy(self.entropy);
        let mut msg = match self.variant {
            VpnVariant::Pptp => b"SCCRQ".to_vec(),
            VpnVariant::L2tp => b"L2TP-SCCRQ".to_vec(),
            VpnVariant::OpenVpn => vec![opcode::HARD_RESET_CLIENT],
        };
        msg.extend_from_slice(&dh.public_key().to_bytes());
        self.dh = Some(dh);
        msg
    }

    fn finish_handshake(&mut self, server_pub_bytes: &[u8], ctx: &mut Ctx<'_>) {
        let Ok(bytes8): Result<[u8; 8], _> = server_pub_bytes.try_into() else { return };
        let Ok(server_pub) = PublicKey::from_bytes(bytes8) else { return };
        let dh = self.dh.expect("hello sent before reply");
        let key = dh.agree(&server_pub);
        self.key = Some(key);
        self.phase = ClientPhase::Up;
        ctx.install_tunnel(Box::new(VpnTunnel {
            variant: self.variant,
            own: ctx.addr(),
            server: self.server,
            key,
            nonce: 0,
        }));
        self.status.set(TunnelState::Up { established_at: ctx.now() });
    }
}

impl App for VpnClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.phase = ClientPhase::Handshaking;
        match self.variant {
            VpnVariant::Pptp => {
                ctx.register_raw(proto::GRE);
                self.control_tcp =
                    Some(ctx.tcp_connect(SocketAddr::new(self.server, PPTP_PORT)));
            }
            VpnVariant::L2tp => {
                ctx.register_raw(proto::ESP);
                let sock = ctx.udp_bind(0).expect("ephemeral bind");
                self.control_udp = Some(sock);
                let hello = self.hello_payload();
                ctx.udp_send(sock, SocketAddr::new(self.server, L2TP_PORT), Bytes::from(hello));
            }
            VpnVariant::OpenVpn => {
                let sock = ctx.udp_bind(OPENVPN_PORT).expect("openvpn port free");
                self.control_udp = Some(sock);
                let hello = self.hello_payload();
                ctx.udp_send(sock, SocketAddr::new(self.server, OPENVPN_PORT), Bytes::from(hello));
            }
        }
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::Tcp(h, TcpEvent::Connected) if Some(h) == self.control_tcp => {
                let hello = self.hello_payload();
                ctx.tcp_send(h, &hello);
            }
            AppEvent::Tcp(h, TcpEvent::DataReceived) if Some(h) == self.control_tcp => {
                let data = ctx.tcp_recv_all(h);
                if self.phase == ClientPhase::Handshaking {
                    if let Some(rest) = data.strip_prefix(b"SCCRP".as_slice()) {
                        self.finish_handshake(rest, ctx);
                    }
                }
            }
            AppEvent::Tcp(h, TcpEvent::ConnectFailed | TcpEvent::Reset)
                if Some(h) == self.control_tcp =>
            {
                self.status.set(TunnelState::Failed);
            }
            AppEvent::Udp { socket, payload, .. } if Some(socket) == self.control_udp => {
                if self.phase != ClientPhase::Handshaking {
                    // Data channel for OpenVPN rides the same socket.
                    if self.variant == VpnVariant::OpenVpn
                        && payload.first() == Some(&opcode::DATA)
                    {
                        self.deliver_inner(&payload[1..], ctx);
                    }
                    return;
                }
                match self.variant {
                    VpnVariant::L2tp => {
                        if let Some(rest) = payload.strip_prefix(b"L2TP-SCCRP".as_slice()) {
                            self.finish_handshake(rest, ctx);
                        }
                    }
                    VpnVariant::OpenVpn => {
                        if payload.first() == Some(&opcode::HARD_RESET_SERVER) {
                            self.finish_handshake(&payload[1..], ctx);
                        }
                    }
                    VpnVariant::Pptp => {}
                }
            }
            AppEvent::RawPacket(pkt) => {
                // GRE/ESP data from the server.
                if let Some(sealed) = decap_payload(self.variant, &pkt) {
                    self.deliver_inner(&sealed, ctx);
                }
            }
            _ => {}
        }
    }
}

impl VpnClient {
    fn deliver_inner(&mut self, sealed: &[u8], ctx: &mut Ctx<'_>) {
        let Some(key) = self.key else { return };
        let Some(plain) = open_packet(&key, sealed) else { return };
        let Ok(inner) = Packet::decode(&plain) else { return };
        // Feed the decapsulated reply into our own stack (loopback),
        // bypassing the tunnel so it cannot be re-captured.
        ctx.send_packet_untunneled(inner);
    }
}

// --- server -----------------------------------------------------------------

/// A VPN server app: answers control handshakes, decapsulates client
/// packets, NATs them onto the open Internet, and returns replies.
pub struct VpnServer {
    variant: VpnVariant,
    /// Session key per client address.
    sessions: HashMap<Addr, [u8; 32]>,
    nat: Nat,
    nonce: u64,
    entropy: u64,
    udp_sock: Option<UdpHandle>,
    /// Data packets forwarded (diagnostics).
    pub forwarded: u64,
}

impl VpnServer {
    /// Creates a server for one VPN flavour.
    pub fn new(variant: VpnVariant, entropy: u64) -> Self {
        VpnServer {
            variant,
            sessions: HashMap::new(),
            nat: Nat::new(),
            nonce: 1 << 48, // disjoint from client nonce space
            entropy,
            udp_sock: None,
            forwarded: 0,
        }
    }

    fn handle_hello(&mut self, client: Addr, client_pub: &[u8], ctx: &mut Ctx<'_>) -> Option<Vec<u8>> {
        let bytes8: [u8; 8] = client_pub.try_into().ok()?;
        let client_pub = PublicKey::from_bytes(bytes8).ok()?;
        let dh = PrivateKey::from_entropy(self.entropy ^ client.as_u32() as u64);
        let key = dh.agree(&client_pub);
        self.sessions.insert(client, key);
        let _ = ctx;
        let mut reply = match self.variant {
            VpnVariant::Pptp => b"SCCRP".to_vec(),
            VpnVariant::L2tp => b"L2TP-SCCRP".to_vec(),
            VpnVariant::OpenVpn => vec![opcode::HARD_RESET_SERVER],
        };
        reply.extend_from_slice(&dh.public_key().to_bytes());
        Some(reply)
    }

    fn handle_data(&mut self, from: Addr, sealed: &[u8], ctx: &mut Ctx<'_>) {
        let Some(&key) = self.sessions.get(&from) else { return };
        let Some(plain) = open_packet(&key, sealed) else { return };
        let Ok(inner) = Packet::decode(&plain) else { return };
        let public = ctx.addr();
        if let Some(translated) = self.nat.outbound(from, public, inner) {
            self.forwarded += 1;
            ctx.send_packet(translated);
        }
    }

    fn return_to_client(&mut self, client: Addr, inner: Packet, ctx: &mut Ctx<'_>) {
        let Some(&key) = self.sessions.get(&client) else { return };
        self.nonce += 1;
        let sealed = seal_packet(&key, self.nonce, &inner.encode());
        let pkt = encap_packet(self.variant, ctx.addr(), client, sealed);
        ctx.send_packet(pkt);
    }
}

impl App for VpnServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.register_port_tap(NAT_PORT_LO, NAT_PORT_HI);
        match self.variant {
            VpnVariant::Pptp => {
                ctx.tcp_listen(PPTP_PORT);
                ctx.register_raw(proto::GRE);
            }
            VpnVariant::L2tp => {
                self.udp_sock = ctx.udp_bind(L2TP_PORT);
                ctx.register_raw(proto::ESP);
            }
            VpnVariant::OpenVpn => {
                self.udp_sock = ctx.udp_bind(OPENVPN_PORT);
            }
        }
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        match ev {
            AppEvent::Tcp(h, TcpEvent::DataReceived) => {
                // PPTP control channel.
                let data = ctx.tcp_recv_all(h);
                if let Some(rest) = data.strip_prefix(b"SCCRQ".as_slice()) {
                    let peer = ctx.tcp_peer(h).map(|p| p.addr);
                    if let Some(client) = peer {
                        if let Some(reply) = self.handle_hello(client, rest, ctx) {
                            ctx.tcp_send(h, &reply);
                        }
                    }
                }
            }
            AppEvent::Udp { socket, from, payload } if Some(socket) == self.udp_sock => {
                match self.variant {
                    VpnVariant::L2tp => {
                        if let Some(rest) = payload.strip_prefix(b"L2TP-SCCRQ".as_slice()) {
                            if let Some(reply) = self.handle_hello(from.addr, rest, ctx) {
                                ctx.udp_send(socket, from, Bytes::from(reply));
                            }
                        }
                    }
                    VpnVariant::OpenVpn => match payload.first() {
                        Some(&opcode::HARD_RESET_CLIENT) => {
                            if let Some(reply) = self.handle_hello(from.addr, &payload[1..], ctx) {
                                ctx.udp_send(socket, from, Bytes::from(reply));
                            }
                        }
                        Some(&opcode::DATA) => {
                            self.handle_data(from.addr, &payload[1..], ctx);
                        }
                        _ => {}
                    },
                    VpnVariant::Pptp => {}
                }
            }
            AppEvent::RawPacket(pkt) => {
                // Either GRE/ESP data from a client, or a NAT-tapped reply.
                if let Some(sealed) = decap_payload(self.variant, &pkt) {
                    let from = pkt.src;
                    self.handle_data(from, &sealed, ctx);
                } else if let Some((client, restored)) = self.nat.inbound(pkt) {
                    self.return_to_client(client, restored, ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let key = [7u8; 32];
        let sealed = seal_packet(&key, 42, b"inner packet");
        assert_eq!(open_packet(&key, &sealed).unwrap(), b"inner packet");
        // Tampering is detected.
        let mut bad = sealed.clone();
        bad[10] ^= 1;
        assert!(open_packet(&key, &bad).is_none());
        // Wrong key fails.
        assert!(open_packet(&[8u8; 32], &sealed).is_none());
        // Truncation fails.
        assert!(open_packet(&key, &sealed[..10]).is_none());
    }

    #[test]
    fn sealed_payload_is_high_entropy() {
        let key = [9u8; 32];
        let sealed = seal_packet(&key, 1, &vec![0u8; 2000]);
        let stats = sc_crypto::entropy::PayloadStats::analyze(&sealed);
        assert!(stats.entropy > 7.0);
    }

    #[test]
    fn nat_roundtrip() {
        let mut nat = Nat::new();
        let client = Addr::new(10, 0, 0, 1);
        let public = Addr::new(99, 0, 0, 9);
        let inner = Packet::tcp(
            SocketAddr::new(client, 40_000),
            SocketAddr::new(Addr::new(99, 2, 0, 1), 443),
            sc_simnet::packet::TcpSegmentBody {
                seq: 1,
                ack: 0,
                flags: sc_simnet::packet::TcpFlags::SYN,
                window: 100,
                payload: Bytes::new(),
            },
        );
        let out = nat.outbound(client, public, inner).unwrap();
        assert_eq!(out.src, public);
        let nat_port = out.src_socket().unwrap().port;
        assert!((NAT_PORT_LO..=NAT_PORT_HI).contains(&nat_port));

        // Simulate the reply.
        let reply = Packet::tcp(
            SocketAddr::new(Addr::new(99, 2, 0, 1), 443),
            SocketAddr::new(public, nat_port),
            sc_simnet::packet::TcpSegmentBody {
                seq: 0,
                ack: 2,
                flags: sc_simnet::packet::TcpFlags::SYN_ACK,
                window: 100,
                payload: Bytes::new(),
            },
        );
        let (back_client, restored) = nat.inbound(reply).unwrap();
        assert_eq!(back_client, client);
        assert_eq!(restored.dst_socket().unwrap(), SocketAddr::new(client, 40_000));
        assert_eq!(nat.len(), 1);
    }

    #[test]
    fn nat_reuses_port_for_same_flow() {
        let mut nat = Nat::new();
        let client = Addr::new(10, 0, 0, 1);
        let public = Addr::new(99, 0, 0, 9);
        let mk = || {
            Packet::tcp(
                SocketAddr::new(client, 41_000),
                SocketAddr::new(Addr::new(99, 2, 0, 1), 80),
                sc_simnet::packet::TcpSegmentBody {
                    seq: 1,
                    ack: 0,
                    flags: sc_simnet::packet::TcpFlags::ACK,
                    window: 100,
                    payload: Bytes::new(),
                },
            )
        };
        let p1 = nat.outbound(client, public, mk()).unwrap();
        let p2 = nat.outbound(client, public, mk()).unwrap();
        assert_eq!(p1.src_socket(), p2.src_socket());
        assert_eq!(nat.len(), 1);
    }

    #[test]
    fn variant_overheads() {
        assert_eq!(VpnVariant::Pptp.per_packet_overhead(), 16);
        assert_eq!(VpnVariant::OpenVpn.per_packet_overhead(), 17);
        assert_eq!(VpnVariant::Pptp.name(), "pptp");
    }
}
