//! Shadowsocks: a local SOCKS5 proxy on the client device and a remote
//! proxy outside the wall, with AES-256-CFB encryption — as studied in
//! §4 of the paper.
//!
//! Faithful details that drive the paper's findings:
//!
//! * **Extra auth connection (TCP-1 in Figure 4)**: each HTTP session
//!   begins with a separate TCP connection performing user/password
//!   authentication, re-run whenever the 10-second keep-alive expires —
//!   the root cause the paper identifies for Shadowsocks' 3.7 s PLT.
//! * **Headerless high-entropy wire format** (IV ‖ ciphertext): exactly
//!   what the GFW's "fully encrypted traffic" heuristic flags.
//! * **Probe behaviour**: the remote server consumes undecryptable bytes
//!   silently — the signature the GFW's active prober confirms.

use std::collections::HashMap;

use rand::Rng;
use sc_crypto::hmac::bytes_to_key;
use sc_crypto::modes::Cfb;
use sc_crypto::{Aes, KeySize};
use sc_netproto::socks::{SocksServerSession, TargetAddr};

use crate::names::NameMap;
use sc_simnet::addr::SocketAddr;
use sc_simnet::api::{App, AppEvent, TcpEvent, TcpHandle};
use sc_simnet::sim::Ctx;
use sc_simnet::time::{SimDuration, SimTime};

/// Default Shadowsocks remote port.
pub const SS_PORT: u16 = 8388;
/// Default local SOCKS5 port.
pub const SS_LOCAL_PORT: u16 = 1080;
/// The keep-alive window after which authentication must be redone
/// (the 10-second default the paper calls out).
pub const DEFAULT_KEEPALIVE: SimDuration = SimDuration::from_secs(10);

const AUTH_MAGIC: &[u8] = b"SSAUTH";

/// Shadowsocks deployment parameters.
#[derive(Debug, Clone)]
pub struct SsConfig {
    /// The remote proxy.
    pub server: SocketAddr,
    /// Shared password (keys derived via the EVP-style KDF).
    pub password: String,
    /// Username for the per-session auth connection.
    pub username: String,
    /// Auth keep-alive window.
    pub keepalive: SimDuration,
    /// Authenticate once per data connection (Figure 4 shows the TCP-1
    /// auth connection in every HTTP session) instead of sharing one
    /// authenticated window across connections.
    pub auth_per_connection: bool,
    /// Local SOCKS5 port.
    pub local_port: u16,
}

impl SsConfig {
    /// A typical deployment against `server`.
    pub fn new(server: SocketAddr) -> Self {
        SsConfig {
            server,
            password: "scholar-tunnel-pw".into(),
            username: "scholar".into(),
            keepalive: DEFAULT_KEEPALIVE,
            auth_per_connection: false,
            local_port: SS_LOCAL_PORT,
        }
    }

    fn key(&self) -> [u8; 32] {
        bytes_to_key(self.password.as_bytes(), 32)
            .try_into()
            .expect("32-byte key")
    }
}

fn new_cfb(key: &[u8; 32], iv: [u8; 16]) -> Cfb {
    Cfb::new(Aes::new(KeySize::Aes256, key).expect("32-byte key"), iv)
}

// --- local proxy -------------------------------------------------------------

#[derive(Debug)]
enum BrowserConn {
    Negotiating(SocksServerSession),
    /// Waiting for auth (and then a data connection).
    Queued {
        target: TargetAddr,
        buffered: Vec<u8>,
    },
    /// Proxied via the given remote data connection.
    Proxied(TcpHandle),
    Dead,
}

#[derive(Debug)]
enum RemoteConn {
    AuthInFlight {
        /// In per-connection mode, the browser connection this auth is
        /// dedicated to.
        dedicated: Option<TcpHandle>,
        rx: Option<Box<Cfb>>,
        tx: Box<Cfb>,
        buf: Vec<u8>,
        challenge_answered: bool,
    },
    DataConnecting {
        browser: TcpHandle,
        target: TargetAddr,
        buffered: Vec<u8>,
    },
    DataUp {
        browser: TcpHandle,
        tx: Box<Cfb>,
        rx: Option<Box<Cfb>>,
        rx_buf: Vec<u8>,
    },
}

/// The Shadowsocks local proxy app (runs on the user's machine; browsers
/// speak SOCKS5 to it on `local_port`).
pub struct SsLocal {
    config: SsConfig,
    key: [u8; 32],
    browsers: HashMap<TcpHandle, BrowserConn>,
    remotes: HashMap<TcpHandle, RemoteConn>,
    last_auth: Option<SimTime>,
    auth_in_flight: bool,
    /// Auth round-trips performed (diagnostics; the paper's TCP-1 count).
    pub auth_connections: u64,
}

impl SsLocal {
    /// Creates the local proxy.
    pub fn new(config: SsConfig) -> Self {
        let key = config.key();
        SsLocal {
            config,
            key,
            browsers: HashMap::new(),
            remotes: HashMap::new(),
            last_auth: None,
            auth_in_flight: false,
            auth_connections: 0,
        }
    }

    fn auth_fresh(&self, now: SimTime) -> bool {
        self.last_auth
            .is_some_and(|t| now - t < self.config.keepalive)
    }

    fn begin_auth(&mut self, dedicated: Option<TcpHandle>, ctx: &mut Ctx<'_>) {
        if dedicated.is_none() {
            if self.auth_in_flight {
                return;
            }
            self.auth_in_flight = true;
        }
        self.auth_connections += 1;
        let h = ctx.tcp_connect(self.config.server);
        let mut iv = [0u8; 16];
        ctx.rng().fill(&mut iv);
        let tx = Box::new(new_cfb(&self.key, iv));
        self.remotes.insert(
            h,
            RemoteConn::AuthInFlight {
                dedicated,
                rx: None,
                tx,
                buf: iv.to_vec(),
                challenge_answered: false,
            },
        );
    }

    fn open_data_conn(&mut self, browser: TcpHandle, target: TargetAddr, buffered: Vec<u8>, ctx: &mut Ctx<'_>) {
        let h = ctx.tcp_connect(self.config.server);
        self.remotes
            .insert(h, RemoteConn::DataConnecting { browser, target, buffered });
        self.browsers.insert(browser, BrowserConn::Proxied(h));
    }

    fn flush_queued(&mut self, ctx: &mut Ctx<'_>) {
        let queued: Vec<(TcpHandle, TargetAddr, Vec<u8>)> = self
            .browsers
            .iter_mut()
            .filter_map(|(h, c)| {
                if let BrowserConn::Queued { target, buffered } = c {
                    let t = target.clone();
                    let b = std::mem::take(buffered);
                    Some((*h, t, b))
                } else {
                    None
                }
            })
            .collect();
        for (h, target, buffered) in queued {
            self.open_data_conn(h, target, buffered, ctx);
        }
    }

    fn on_socks_ready(&mut self, browser: TcpHandle, target: TargetAddr, leftover: Vec<u8>, ctx: &mut Ctx<'_>) {
        if self.config.auth_per_connection {
            // Figure-4 behaviour: every HTTP session begins with its own
            // TCP-1 authentication connection.
            self.browsers
                .insert(browser, BrowserConn::Queued { target, buffered: leftover });
            self.begin_auth(Some(browser), ctx);
        } else if self.auth_fresh(ctx.now()) {
            self.open_data_conn(browser, target, leftover, ctx);
        } else {
            self.browsers
                .insert(browser, BrowserConn::Queued { target, buffered: leftover });
            self.begin_auth(None, ctx);
        }
    }
}

impl App for SsLocal {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(self.config.local_port);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };

        // --- browser side ---
        if self.browsers.contains_key(&h) || matches!(tcp_ev, TcpEvent::Accepted { .. }) {
            match tcp_ev {
                TcpEvent::Accepted { .. } => {
                    self.browsers
                        .insert(h, BrowserConn::Negotiating(SocksServerSession::new()));
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    match self.browsers.get_mut(&h) {
                        Some(BrowserConn::Negotiating(sess)) => {
                            let out = sess.on_bytes(&data);
                            if !out.reply.is_empty() {
                                ctx.tcp_send(h, &out.reply);
                            }
                            if out.failed {
                                ctx.tcp_close(h);
                                self.browsers.insert(h, BrowserConn::Dead);
                            } else if let Some(target) = out.connect {
                                self.on_socks_ready(h, target, out.leftover, ctx);
                            }
                        }
                        Some(BrowserConn::Queued { buffered, .. }) => {
                            buffered.extend_from_slice(&data);
                        }
                        Some(BrowserConn::Proxied(remote)) => {
                            let remote = *remote;
                            match self.remotes.get_mut(&remote) {
                                Some(RemoteConn::DataUp { tx, .. }) => {
                                    let mut enc = data.to_vec();
                                    tx.encrypt(&mut enc);
                                    ctx.tcp_send(remote, &enc);
                                }
                                Some(RemoteConn::DataConnecting { buffered, .. }) => {
                                    buffered.extend_from_slice(&data);
                                }
                                _ => {}
                            }
                        }
                        _ => {}
                    }
                }
                TcpEvent::PeerClosed | TcpEvent::Reset => {
                    if let Some(BrowserConn::Proxied(remote)) = self.browsers.get(&h) {
                        ctx.tcp_close(*remote);
                    }
                    self.browsers.insert(h, BrowserConn::Dead);
                }
                _ => {}
            }
            return;
        }

        // --- remote side ---
        match tcp_ev {
            TcpEvent::Connected => {
                match self.remotes.get_mut(&h) {
                    Some(RemoteConn::AuthInFlight { tx, buf, .. }) => {
                        // IV ‖ E(MAGIC ‖ ulen ‖ user ‖ plen ‖ pass)
                        let user = self.config.username.as_bytes().to_vec();
                        let pass = self.config.password.as_bytes().to_vec();
                        let mut plain = AUTH_MAGIC.to_vec();
                        plain.push(user.len() as u8);
                        plain.extend_from_slice(&user);
                        plain.push(pass.len() as u8);
                        plain.extend_from_slice(&pass);
                        let mut frame = std::mem::take(buf); // the IV
                        tx.encrypt(&mut plain);
                        frame.extend_from_slice(&plain);
                        ctx.tcp_send(h, &frame);
                    }
                    Some(RemoteConn::DataConnecting { browser, target, buffered }) => {
                        let browser = *browser;
                        let target = target.clone();
                        let buffered = std::mem::take(buffered);
                        let mut iv = [0u8; 16];
                        ctx.rng().fill(&mut iv);
                        let mut tx = new_cfb(&self.key, iv);
                        let mut plain = target.encode();
                        plain.extend_from_slice(&buffered);
                        let mut frame = iv.to_vec();
                        let mut ct = plain;
                        tx.encrypt(&mut ct);
                        frame.extend_from_slice(&ct);
                        ctx.tcp_send(h, &frame);
                        self.remotes.insert(
                            h,
                            RemoteConn::DataUp {
                                browser,
                                tx: Box::new(tx),
                                rx: None,
                                rx_buf: Vec::new(),
                            },
                        );
                    }
                    _ => {}
                }
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                match self.remotes.get_mut(&h) {
                    Some(RemoteConn::AuthInFlight { dedicated, rx, tx, buf, challenge_answered }) => {
                        buf.extend_from_slice(&data);
                        if rx.is_none() {
                            if buf.len() < 16 {
                                return;
                            }
                            let iv: [u8; 16] = buf[..16].try_into().expect("checked");
                            *rx = Some(Box::new(new_cfb(&self.key, iv)));
                            buf.drain(..16);
                        }
                        let mut plain = std::mem::take(buf);
                        rx.as_mut().expect("just set").decrypt(&mut plain);
                        if !*challenge_answered {
                            // Server sent a 16-byte challenge; answer with
                            // HMAC(password, challenge).
                            if plain.len() < 16 {
                                // Re-encrypt leftover? Simpler: stash the
                                // decrypted prefix back (decrypted bytes
                                // buffer as plain).
                                *buf = plain;
                                return;
                            }
                            let challenge: [u8; 16] = plain[..16].try_into().expect("checked");
                            *challenge_answered = true;
                            let mut answer = sc_crypto::hmac::hmac_sha256(
                                self.config.password.as_bytes(),
                                &challenge,
                            )[..16]
                                .to_vec();
                            tx.encrypt(&mut answer);
                            ctx.tcp_send(h, &answer);
                            *buf = plain[16..].to_vec();
                            return;
                        }
                        // Expect the 1-byte OK verdict.
                        if plain.is_empty() {
                            return;
                        }
                        let ok = plain[0] == 1;
                        let dedicated = *dedicated;
                        ctx.tcp_close(h);
                        self.remotes.remove(&h);
                        if !ok {
                            return;
                        }
                        self.last_auth = Some(ctx.now());
                        match dedicated {
                            Some(browser) => {
                                if let Some(BrowserConn::Queued { target, buffered }) =
                                    self.browsers.get_mut(&browser)
                                {
                                    let target = target.clone();
                                    let buffered = std::mem::take(buffered);
                                    self.open_data_conn(browser, target, buffered, ctx);
                                }
                            }
                            None => {
                                self.auth_in_flight = false;
                                self.flush_queued(ctx);
                            }
                        }
                    }
                    Some(RemoteConn::DataUp { browser, rx, rx_buf, .. }) => {
                        let browser = *browser;
                        rx_buf.extend_from_slice(&data);
                        if rx.is_none() {
                            if rx_buf.len() < 16 {
                                return;
                            }
                            let iv: [u8; 16] = rx_buf[..16].try_into().expect("checked length");
                            *rx = Some(Box::new(new_cfb(&self.key, iv)));
                            rx_buf.drain(..16);
                        }
                        if let Some(rx) = rx {
                            let mut plain = std::mem::take(rx_buf);
                            rx.decrypt(&mut plain);
                            ctx.tcp_send(browser, &plain);
                        }
                    }
                    _ => {}
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                match self.remotes.remove(&h) {
                    Some(RemoteConn::DataUp { browser, .. })
                    | Some(RemoteConn::DataConnecting { browser, .. }) => {
                        ctx.tcp_close(browser);
                        self.browsers.insert(browser, BrowserConn::Dead);
                    }
                    Some(RemoteConn::AuthInFlight { dedicated, .. }) => {
                        if dedicated.is_none() {
                            self.auth_in_flight = false;
                        }
                    }
                    None => {}
                }
            }
            _ => {}
        }
    }
}

// --- remote proxy -------------------------------------------------------------

#[derive(Debug)]
enum ServerConn {
    /// Awaiting IV + first decrypted bytes.
    Handshake {
        rx: Option<Box<Cfb>>,
        buf: Vec<u8>,
        plain: Vec<u8>,
    },
    /// Relaying to an upstream connection.
    Relaying {
        upstream: TcpHandle,
        rx: Box<Cfb>,
        tx: Option<Box<Cfb>>,
    },
    /// Undecryptable input: consume silently (probe-visible behaviour).
    Blackhole,
}

/// The Shadowsocks remote proxy app (runs on the VM outside the wall).
pub struct SsRemote {
    key: [u8; 32],
    username: String,
    password: String,
    names: NameMap,
    conns: HashMap<TcpHandle, ServerConn>,
    /// Upstream handle → client handle.
    upstreams: HashMap<TcpHandle, TcpHandle>,
    /// Pending data for upstream connections still connecting.
    upstream_pending: HashMap<TcpHandle, Vec<u8>>,
    /// Outstanding auth challenges: conn → (expected answer, reply
    /// cipher stream).
    pending_challenges: HashMap<TcpHandle, (Vec<u8>, Box<Cfb>)>,
    /// Successful relays established (diagnostics).
    pub relays: u64,
    /// Auth sessions served (diagnostics).
    pub auths: u64,
}

impl SsRemote {
    /// Creates the remote proxy for the given config. `names` is the
    /// outside world's DNS view, used to resolve domain targets (remote
    /// resolution is what lets Shadowsocks shrug off DNS poisoning).
    pub fn new(config: &SsConfig, names: NameMap) -> Self {
        SsRemote {
            key: config.key(),
            username: config.username.clone(),
            password: config.password.clone(),
            names,
            conns: HashMap::new(),
            upstreams: HashMap::new(),
            upstream_pending: HashMap::new(),
            pending_challenges: HashMap::new(),
            relays: 0,
            auths: 0,
        }
    }

    fn try_interpret(&mut self, h: TcpHandle, ctx: &mut Ctx<'_>) {
        let Some(ServerConn::Handshake { rx, plain, .. }) = self.conns.get_mut(&h) else { return };
        let plain_snapshot = plain.clone();
        // Auth frame?
        if plain_snapshot.starts_with(AUTH_MAGIC) {
            let rest = &plain_snapshot[AUTH_MAGIC.len()..];
            if !rest.is_empty() {
                let ulen = rest[0] as usize;
                if rest.len() >= 1 + ulen + 1 {
                    let plen = rest[1 + ulen] as usize;
                    if rest.len() >= 2 + ulen + plen {
                        let user = String::from_utf8_lossy(&rest[1..1 + ulen]).to_string();
                        let pass = String::from_utf8_lossy(&rest[2 + ulen..2 + ulen + plen]).to_string();
                        if user == self.username && pass == self.password {
                            // Issue the challenge (second auth round trip
                            // — the paper's costly TCP-1 exchange).
                            let mut iv = [0u8; 16];
                            ctx.rng().fill(&mut iv);
                            let mut tx = new_cfb(&self.key, iv);
                            let mut challenge = [0u8; 16];
                            ctx.rng().fill(&mut challenge);
                            let expect = sc_crypto::hmac::hmac_sha256(
                                self.password.as_bytes(),
                                &challenge,
                            )[..16]
                                .to_vec();
                            let mut body = challenge.to_vec();
                            tx.encrypt(&mut body);
                            let mut frame = iv.to_vec();
                            frame.extend_from_slice(&body);
                            ctx.tcp_send(h, &frame);
                            let consumed = AUTH_MAGIC.len() + 2 + ulen + plen;
                            if let Some(ServerConn::Handshake { plain, .. }) = self.conns.get_mut(&h) {
                                plain.drain(..consumed);
                            }
                            self.pending_challenges.insert(h, (expect, Box::new(tx)));
                        } else {
                            // Bad credentials: silent (probe-visible).
                            self.conns.insert(h, ServerConn::Blackhole);
                        }
                        return;
                    }
                }
            }
            return; // need more bytes
        }
        // Challenge answer?
        if let Some((expect, _)) = self.pending_challenges.get(&h) {
            if plain_snapshot.len() >= expect.len() {
                let (expect, mut tx) = self.pending_challenges.remove(&h).expect("checked");
                if sc_crypto::hmac::ct_eq(&plain_snapshot[..16], &expect) {
                    self.auths += 1;
                    let mut ok = vec![1u8];
                    tx.encrypt(&mut ok);
                    ctx.tcp_send(h, &ok);
                } else {
                    self.conns.insert(h, ServerConn::Blackhole);
                }
            }
            return;
        }
        // Target header?
        match TargetAddr::decode(&plain_snapshot) {
            Some((target, consumed)) => {
                let upstream_addr = match &target {
                    TargetAddr::Ip(a, p) => SocketAddr::new(*a, *p),
                    TargetAddr::Domain(name, p) => match self.names.resolve(name) {
                        Some(a) => SocketAddr::new(a, *p),
                        None => {
                            self.conns.insert(h, ServerConn::Blackhole);
                            return;
                        }
                    },
                };
                let upstream = ctx.tcp_connect(upstream_addr);
                let leftover = plain_snapshot[consumed..].to_vec();
                self.upstreams.insert(upstream, h);
                self.upstream_pending.insert(upstream, leftover);
                self.relays += 1;
                let rx = rx.take().expect("IV consumed before header");
                self.conns.insert(h, ServerConn::Relaying { upstream, rx, tx: None });
            }
            None => {
                // Enough bytes to rule out a valid header ⇒ garbage.
                if plain_snapshot.len() >= 64 {
                    self.conns.insert(h, ServerConn::Blackhole);
                }
            }
        }
    }
}

impl App for SsRemote {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(SS_PORT);
    }

    fn on_event(&mut self, ev: AppEvent, ctx: &mut Ctx<'_>) {
        let AppEvent::Tcp(h, tcp_ev) = ev else { return };

        // Upstream side.
        if let Some(&client) = self.upstreams.get(&h) {
            match tcp_ev {
                TcpEvent::Connected => {
                    if let Some(pending) = self.upstream_pending.remove(&h) {
                        if !pending.is_empty() {
                            ctx.tcp_send(h, &pending);
                        }
                    }
                }
                TcpEvent::DataReceived => {
                    let data = ctx.tcp_recv_all(h);
                    if let Some(ServerConn::Relaying { tx, .. }) = self.conns.get_mut(&client) {
                        if tx.is_none() {
                            let mut iv = [0u8; 16];
                            ctx.rng().fill(&mut iv);
                            *tx = Some(Box::new(new_cfb(&self.key, iv)));
                            ctx.tcp_send(client, &iv);
                        }
                        let tx = tx.as_mut().expect("just initialized");
                        let mut enc = data.to_vec();
                        tx.encrypt(&mut enc);
                        ctx.tcp_send(client, &enc);
                    }
                }
                TcpEvent::PeerClosed | TcpEvent::Reset | TcpEvent::ConnectFailed => {
                    ctx.tcp_close(client);
                    self.upstreams.remove(&h);
                }
                _ => {}
            }
            return;
        }

        // Client side.
        match tcp_ev {
            TcpEvent::Accepted { .. } => {
                self.conns.insert(
                    h,
                    ServerConn::Handshake { rx: None, buf: Vec::new(), plain: Vec::new() },
                );
            }
            TcpEvent::DataReceived => {
                let data = ctx.tcp_recv_all(h);
                match self.conns.get_mut(&h) {
                    Some(ServerConn::Handshake { rx, buf, plain }) => {
                        buf.extend_from_slice(&data);
                        if rx.is_none() {
                            if buf.len() < 16 {
                                return;
                            }
                            let iv: [u8; 16] = buf[..16].try_into().expect("checked length");
                            *rx = Some(Box::new(new_cfb(&self.key, iv)));
                            buf.drain(..16);
                        }
                        if let Some(rx) = rx {
                            let mut chunk = std::mem::take(buf);
                            rx.decrypt(&mut chunk);
                            plain.extend_from_slice(&chunk);
                        }
                        self.try_interpret(h, ctx);
                    }
                    Some(ServerConn::Relaying { upstream, rx, .. }) => {
                        let upstream = *upstream;
                        let mut plain = data.to_vec();
                        rx.decrypt(&mut plain);
                        if self.upstream_pending.contains_key(&upstream) {
                            self.upstream_pending
                                .get_mut(&upstream)
                                .expect("checked")
                                .extend_from_slice(&plain);
                        } else {
                            ctx.tcp_send(upstream, &plain);
                        }
                    }
                    Some(ServerConn::Blackhole) => { /* consume silently */ }
                    None => {}
                }
            }
            TcpEvent::PeerClosed | TcpEvent::Reset => {
                if let Some(ServerConn::Relaying { upstream, .. }) = self.conns.remove(&h) {
                    ctx.tcp_close(upstream);
                    self.upstreams.remove(&upstream);
                }
            }
            _ => {}
        }
    }
}
