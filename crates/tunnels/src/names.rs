//! The foreign-DNS view used by exit-side resolution.
//!
//! Proxied methods (Shadowsocks, Tor, ScholarCloud) defeat DNS poisoning
//! because the *remote* end resolves names, outside the censor's reach.
//! Remote proxies and Tor exits hold a [`NameMap`] representing the
//! uncensored DNS view of the outside world.

use std::collections::HashMap;
use std::rc::Rc;

use sc_simnet::addr::Addr;

/// A shared, immutable name → address map (the outside world's DNS view).
#[derive(Debug, Clone, Default)]
pub struct NameMap(Rc<HashMap<String, Addr>>);

impl NameMap {
    /// Builds a map from (name, addr) pairs.
    pub fn new(entries: impl IntoIterator<Item = (impl Into<String>, Addr)>) -> Self {
        NameMap(Rc::new(
            entries
                .into_iter()
                .map(|(n, a)| (n.into().to_ascii_lowercase(), a))
                .collect(),
        ))
    }

    /// Resolves a name.
    pub fn resolve(&self, name: &str) -> Option<Addr> {
        self.0.get(&name.to_ascii_lowercase()).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_is_case_insensitive() {
        let m = NameMap::new([("Scholar.Google.com", Addr::new(99, 2, 0, 1))]);
        assert_eq!(m.resolve("scholar.google.COM"), Some(Addr::new(99, 2, 0, 1)));
        assert_eq!(m.resolve("other.example"), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
