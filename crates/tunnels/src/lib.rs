//! # sc-tunnels
//!
//! The circumvention middleware studied in §4 of the paper, each built
//! from scratch over `sc-simnet` sockets with its real wire format:
//!
//! * [`vpn`] — native VPN (PPTP with GRE, L2TP with ESP) and OpenVPN:
//!   control handshake, per-packet sealing, full-tunnel capture, NAT.
//! * [`shadowsocks`] — local SOCKS5 proxy + AES-256-CFB remote, with the
//!   per-session auth connection and 10 s keep-alive the paper blames for
//!   its PLT, and the probe-visible silent-server behaviour.
//! * [`tor`] — directory bootstrap, meek (HTTPS long-poll) transport,
//!   three-hop onion circuits, exit streams.
//! * [`names`] — the uncensored DNS view used for exit-side resolution.
//! * [`status`] — tunnel readiness handles for measurement harnesses.

#![warn(missing_docs)]

pub mod names;
pub mod shadowsocks;
pub mod status;
pub mod tor;
pub mod vpn;

pub use names::NameMap;
pub use shadowsocks::{SsConfig, SsLocal, SsRemote, SS_LOCAL_PORT, SS_PORT};
pub use status::{TunnelState, TunnelStatus};
pub use tor::{TorClient, TorConfig};
pub use vpn::{VpnClient, VpnServer, VpnVariant};
