//! The Figure-3 survey: how 371 Tsinghua scholars reported accessing
//! Google Scholar in July 2015.
//!
//! The published numbers: 26% of respondents bypass the GFW at all; of
//! those, 43% use VPNs (93% native VPN / 7% OpenVPN), 2% Tor, 21%
//! Shadowsocks, and 34% other methods (web proxies, hosts-file edits).
//! We reproduce the sampling + tabulation pipeline: a seeded population
//! sampler draws respondents from the reported distribution and the
//! tabulator recovers the shares.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a (bypassing) respondent accesses Google Scholar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMethod {
    /// PPTP/L2TP native VPN.
    NativeVpn,
    /// OpenVPN.
    OpenVpn,
    /// Tor.
    Tor,
    /// Shadowsocks.
    Shadowsocks,
    /// Other (web proxies, hosts-file editing, …).
    Other,
}

/// One survey response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Does not bypass the GFW.
    NoBypass,
    /// Bypasses using the given method.
    Bypasses(AccessMethod),
}

/// The population distribution reported in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyDistribution {
    /// Fraction of scholars who bypass at all.
    pub bypass: f64,
    /// Among bypassers: VPN share.
    pub vpn: f64,
    /// Among VPN users: native VPN share (the rest is OpenVPN).
    pub native_vpn_within_vpn: f64,
    /// Among bypassers: Tor share.
    pub tor: f64,
    /// Among bypassers: Shadowsocks share.
    pub shadowsocks: f64,
    /// Among bypassers: other methods.
    pub other: f64,
}

impl SurveyDistribution {
    /// The distribution from Figure 3.
    pub fn paper() -> Self {
        SurveyDistribution {
            bypass: 0.26,
            vpn: 0.43,
            native_vpn_within_vpn: 0.93,
            tor: 0.02,
            shadowsocks: 0.21,
            other: 0.34,
        }
    }

    /// Checks the within-bypassers shares sum to 1.
    pub fn is_consistent(&self) -> bool {
        (self.vpn + self.tor + self.shadowsocks + self.other - 1.0).abs() < 1e-9
    }
}

/// Draws `n` responses from the distribution with a seeded RNG.
pub fn sample_population(dist: &SurveyDistribution, n: usize, seed: u64) -> Vec<Response> {
    assert!(dist.is_consistent(), "survey shares must sum to 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() >= dist.bypass {
                return Response::NoBypass;
            }
            let x: f64 = rng.gen();
            let method = if x < dist.vpn {
                if rng.gen::<f64>() < dist.native_vpn_within_vpn {
                    AccessMethod::NativeVpn
                } else {
                    AccessMethod::OpenVpn
                }
            } else if x < dist.vpn + dist.tor {
                AccessMethod::Tor
            } else if x < dist.vpn + dist.tor + dist.shadowsocks {
                AccessMethod::Shadowsocks
            } else {
                AccessMethod::Other
            };
            Response::Bypasses(method)
        })
        .collect()
}

/// Tabulated survey results (Figure 3's numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyTabulation {
    /// Respondents.
    pub respondents: usize,
    /// Count who bypass.
    pub bypassers: usize,
    /// Counts per method among bypassers.
    pub native_vpn: usize,
    /// OpenVPN count.
    pub openvpn: usize,
    /// Tor count.
    pub tor: usize,
    /// Shadowsocks count.
    pub shadowsocks: usize,
    /// Other-method count.
    pub other: usize,
}

impl SurveyTabulation {
    /// Tabulates raw responses.
    pub fn tabulate(responses: &[Response]) -> Self {
        let mut t = SurveyTabulation {
            respondents: responses.len(),
            bypassers: 0,
            native_vpn: 0,
            openvpn: 0,
            tor: 0,
            shadowsocks: 0,
            other: 0,
        };
        for r in responses {
            if let Response::Bypasses(m) = r {
                t.bypassers += 1;
                match m {
                    AccessMethod::NativeVpn => t.native_vpn += 1,
                    AccessMethod::OpenVpn => t.openvpn += 1,
                    AccessMethod::Tor => t.tor += 1,
                    AccessMethod::Shadowsocks => t.shadowsocks += 1,
                    AccessMethod::Other => t.other += 1,
                }
            }
        }
        t
    }

    /// Fraction of respondents who bypass.
    pub fn bypass_share(&self) -> f64 {
        self.bypassers as f64 / self.respondents.max(1) as f64
    }

    /// Shares among bypassers: (vpn, tor, shadowsocks, other).
    pub fn method_shares(&self) -> (f64, f64, f64, f64) {
        let b = self.bypassers.max(1) as f64;
        (
            (self.native_vpn + self.openvpn) as f64 / b,
            self.tor as f64 / b,
            self.shadowsocks as f64 / b,
            self.other as f64 / b,
        )
    }

    /// Native-VPN share within VPN users.
    pub fn native_share_within_vpn(&self) -> f64 {
        let v = (self.native_vpn + self.openvpn).max(1) as f64;
        self.native_vpn as f64 / v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_distribution_is_consistent() {
        assert!(SurveyDistribution::paper().is_consistent());
    }

    #[test]
    fn small_sample_is_deterministic() {
        let d = SurveyDistribution::paper();
        let a = sample_population(&d, 371, 42);
        let b = sample_population(&d, 371, 42);
        assert_eq!(a, b);
        assert_ne!(a, sample_population(&d, 371, 43));
    }

    #[test]
    fn large_sample_converges_to_figure3() {
        let d = SurveyDistribution::paper();
        let pop = sample_population(&d, 200_000, 7);
        let t = SurveyTabulation::tabulate(&pop);
        assert!((t.bypass_share() - 0.26).abs() < 0.01, "bypass {}", t.bypass_share());
        let (vpn, tor, ss, other) = t.method_shares();
        assert!((vpn - 0.43).abs() < 0.02, "vpn {vpn}");
        assert!((tor - 0.02).abs() < 0.01, "tor {tor}");
        assert!((ss - 0.21).abs() < 0.02, "ss {ss}");
        assert!((other - 0.34).abs() < 0.02, "other {other}");
        assert!((t.native_share_within_vpn() - 0.93).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn inconsistent_distribution_panics() {
        let mut d = SurveyDistribution::paper();
        d.other = 0.9;
        let _ = sample_population(&d, 10, 1);
    }
}
