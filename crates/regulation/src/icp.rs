//! The non-technical half of China's censorship ecosystem (§2 of the
//! paper): ICP registration with the TCA, MIIT's central database, and
//! the MPS/MSS enforcement workflow — slow, investigation-driven
//! shutdowns of unregistered or illegal services, in contrast to the
//! GFW's immediate technical blocking.

use std::collections::HashMap;

use sc_simnet::time::{SimDuration, SimTime};

/// Government agencies in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agency {
    /// Ministry of Industry and Information Technology: legislation, the
    /// central ICP database.
    Miit,
    /// Telecommunication Administration: per-city registration intake.
    Tca,
    /// Ministry of Public Security: enforcement.
    Mps,
    /// Ministry of State Security: enforcement.
    Mss,
}

/// Documents submitted with a registration (§3's list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrationDossier {
    /// Service name.
    pub service_name: String,
    /// Service type description.
    pub service_type: String,
    /// Domain name.
    pub domain: String,
    /// Responsible person (the legal representative).
    pub responsible_person: String,
    /// Biometric document of the legal representative supplied.
    pub biometric_document: bool,
    /// Documentation with text/screenshots/usage videos supplied.
    pub service_documentation: bool,
    /// Workable user guide supplied.
    pub user_guide: bool,
    /// The visible whitelist of services, if declared.
    pub declared_whitelist: Vec<String>,
}

impl RegistrationDossier {
    /// Whether the dossier is complete enough for the TCA to accept.
    pub fn is_complete(&self) -> bool {
        !self.service_name.is_empty()
            && !self.domain.is_empty()
            && !self.responsible_person.is_empty()
            && self.biometric_document
            && self.service_documentation
            && self.user_guide
    }
}

/// Registration lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationStatus {
    /// Submitted, in manual verification (takes weeks to months).
    UnderReview {
        /// When review completes.
        completes_at: SimTime,
    },
    /// Registered with an ICP number.
    Registered,
    /// Rejected (incomplete dossier).
    Rejected,
}

/// An ICP record in the MIIT database.
#[derive(Debug, Clone)]
pub struct IcpRecord {
    /// The dossier as filed.
    pub dossier: RegistrationDossier,
    /// Status.
    pub status: RegistrationStatus,
    /// Assigned ICP number once registered.
    pub icp_number: Option<String>,
}

/// Enforcement state for a service the MPS/MSS is investigating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementStatus {
    /// Not under investigation.
    Clear,
    /// Evidence collection in progress.
    UnderInvestigation {
        /// When the investigation concludes.
        concludes_at: SimTime,
    },
    /// Shut down (domain blocked, responsible person pursued).
    ShutDown,
}

/// The manual registration review delay (the paper: weeks to months).
pub const REVIEW_DELAY: SimDuration = SimDuration::from_secs(30 * 24 * 3600);
/// Investigation duration before a shutdown (conservative enforcement).
pub const INVESTIGATION_DELAY: SimDuration = SimDuration::from_secs(60 * 24 * 3600);

/// The regulatory ecosystem: the MIIT database plus enforcement state.
#[derive(Debug, Default)]
pub struct Regulator {
    records: HashMap<String, IcpRecord>,
    enforcement: HashMap<String, EnforcementStatus>,
    next_icp: u64,
}

impl Regulator {
    /// Creates an empty regulator (numbers start at the paper's block).
    pub fn new() -> Self {
        Regulator { records: HashMap::new(), enforcement: HashMap::new(), next_icp: 15_063_437 }
    }

    /// Submits a dossier to the TCA at `now`. Returns the initial status.
    pub fn submit(&mut self, dossier: RegistrationDossier, now: SimTime) -> RegistrationStatus {
        let status = if dossier.is_complete() {
            RegistrationStatus::UnderReview { completes_at: now + REVIEW_DELAY }
        } else {
            RegistrationStatus::Rejected
        };
        self.records.insert(
            dossier.domain.clone(),
            IcpRecord { dossier, status, icp_number: None },
        );
        status
    }

    /// Advances the regulator's clock: completes reviews that are due.
    pub fn tick(&mut self, now: SimTime) {
        for rec in self.records.values_mut() {
            if let RegistrationStatus::UnderReview { completes_at } = rec.status {
                if now >= completes_at {
                    rec.status = RegistrationStatus::Registered;
                    rec.icp_number = Some(format!("ICP Reg. #{}", self.next_icp));
                    self.next_icp += 1;
                }
            }
        }
        let shutdowns: Vec<String> = self
            .enforcement
            .iter()
            .filter_map(|(d, s)| match s {
                EnforcementStatus::UnderInvestigation { concludes_at } if now >= *concludes_at => {
                    Some(d.clone())
                }
                _ => None,
            })
            .collect();
        for d in shutdowns {
            self.enforcement.insert(d, EnforcementStatus::ShutDown);
        }
    }

    /// Whether `domain` holds a valid registration.
    pub fn is_registered(&self, domain: &str) -> bool {
        self.records
            .get(domain)
            .is_some_and(|r| r.status == RegistrationStatus::Registered)
    }

    /// The ICP number for `domain`, if registered.
    pub fn icp_number(&self, domain: &str) -> Option<&str> {
        self.records.get(domain).and_then(|r| r.icp_number.as_deref())
    }

    /// MPS/MSS receives a report about `domain` at `now`. Registered
    /// services with a visible whitelist are examined and cleared;
    /// unregistered services go under investigation.
    pub fn report_service(&mut self, domain: &str, now: SimTime) -> EnforcementStatus {
        let status = if self.is_registered(domain) {
            // The agencies can inspect the declared whitelist on demand;
            // a registered, whitelist-scoped service is left standing.
            EnforcementStatus::Clear
        } else {
            EnforcementStatus::UnderInvestigation { concludes_at: now + INVESTIGATION_DELAY }
        };
        self.enforcement.insert(domain.to_string(), status);
        status
    }

    /// Current enforcement status for `domain`.
    pub fn enforcement_status(&self, domain: &str) -> EnforcementStatus {
        self.enforcement
            .get(domain)
            .copied()
            .unwrap_or(EnforcementStatus::Clear)
    }

    /// The agencies may demand a whitelist change; the operator complies
    /// by filing the amended list. Returns false for unregistered domains.
    pub fn amend_whitelist(&mut self, domain: &str, whitelist: Vec<String>) -> bool {
        match self.records.get_mut(domain) {
            Some(rec) if rec.status == RegistrationStatus::Registered => {
                rec.dossier.declared_whitelist = whitelist;
                true
            }
            _ => false,
        }
    }
}

/// A complete ScholarCloud-style dossier (used by tests and examples).
pub fn scholarcloud_dossier() -> RegistrationDossier {
    RegistrationDossier {
        service_name: "ScholarCloud".into(),
        service_type: "academic literature access platform".into(),
        domain: "scholar.thucloud.example".into(),
        responsible_person: "legal representative".into(),
        biometric_document: true,
        service_documentation: true,
        user_guide: true,
        declared_whitelist: vec!["scholar.google.com".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_dossier_registers_after_review() {
        let mut reg = Regulator::new();
        let t0 = SimTime::ZERO;
        let status = reg.submit(scholarcloud_dossier(), t0);
        assert!(matches!(status, RegistrationStatus::UnderReview { .. }));
        assert!(!reg.is_registered("scholar.thucloud.example"));
        reg.tick(t0 + REVIEW_DELAY);
        assert!(reg.is_registered("scholar.thucloud.example"));
        let icp = reg.icp_number("scholar.thucloud.example").unwrap();
        assert!(icp.contains("15063437"), "paper's ICP number: {icp}");
    }

    #[test]
    fn incomplete_dossier_is_rejected() {
        let mut reg = Regulator::new();
        let mut d = scholarcloud_dossier();
        d.biometric_document = false;
        assert_eq!(reg.submit(d, SimTime::ZERO), RegistrationStatus::Rejected);
    }

    #[test]
    fn registered_whitelisted_service_survives_report() {
        let mut reg = Regulator::new();
        reg.submit(scholarcloud_dossier(), SimTime::ZERO);
        reg.tick(SimTime::ZERO + REVIEW_DELAY);
        let status = reg.report_service("scholar.thucloud.example", SimTime::ZERO + REVIEW_DELAY);
        assert_eq!(status, EnforcementStatus::Clear);
    }

    #[test]
    fn unregistered_vpn_service_is_eventually_shut_down() {
        let mut reg = Regulator::new();
        let t0 = SimTime::ZERO;
        let status = reg.report_service("cheap-vpn.example", t0);
        assert!(matches!(status, EnforcementStatus::UnderInvestigation { .. }));
        // Enforcement is slow (the paper: evidence collection takes time).
        reg.tick(t0 + SimDuration::from_secs(24 * 3600));
        assert!(matches!(
            reg.enforcement_status("cheap-vpn.example"),
            EnforcementStatus::UnderInvestigation { .. }
        ));
        reg.tick(t0 + INVESTIGATION_DELAY);
        assert_eq!(
            reg.enforcement_status("cheap-vpn.example"),
            EnforcementStatus::ShutDown
        );
    }

    #[test]
    fn whitelist_amendment_requires_registration() {
        let mut reg = Regulator::new();
        assert!(!reg.amend_whitelist("nobody.example", vec![]));
        reg.submit(scholarcloud_dossier(), SimTime::ZERO);
        reg.tick(SimTime::ZERO + REVIEW_DELAY);
        assert!(reg.amend_whitelist(
            "scholar.thucloud.example",
            vec!["scholar.google.com".into(), "www.google.com".into()],
        ));
    }
}
