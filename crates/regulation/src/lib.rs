//! # sc-regulation
//!
//! The non-technical side of the paper: [`icp`] models §2's bilateral
//! ecosystem (TCA registration, MIIT database, slow MPS/MSS enforcement,
//! whitelist review on demand), and [`survey`] reproduces the Figure-3
//! survey of 371 Tsinghua scholars.

#![warn(missing_docs)]

pub mod icp;
pub mod survey;

pub use icp::{
    Agency, EnforcementStatus, IcpRecord, RegistrationDossier, RegistrationStatus, Regulator,
    scholarcloud_dossier,
};
pub use survey::{AccessMethod, Response, SurveyDistribution, SurveyTabulation, sample_population};
