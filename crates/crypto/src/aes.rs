//! AES block cipher (FIPS-197), implemented from scratch for the
//! reproduction so that Shadowsocks' AES-256-CFB wire format is real.
//!
//! This is a straightforward, table-based implementation. It is *not*
//! hardened against timing side channels; the simulator threat model is
//! a classifier looking at ciphertext bytes, not a co-resident attacker.

/// The AES S-box.
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// The inverse AES S-box.
pub(crate) const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7,
    0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde,
    0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42,
    0xfa, 0xc3, 0x4e, 0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c,
    0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15,
    0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84, 0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7,
    0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc,
    0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73, 0x96, 0xac, 0x74, 0x22, 0xe7, 0xad,
    0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d,
    0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4, 0x1f, 0xdd, 0xa8,
    0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f, 0x60, 0x51,
    0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0,
    0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c,
    0x7d,
];

const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// AES key size, selecting the 128-, 192-, or 256-bit variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// AES-128 (10 rounds).
    Aes128,
    /// AES-192 (12 rounds).
    Aes192,
    /// AES-256 (14 rounds).
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    fn nk(self) -> usize {
        self.key_len() / 4
    }
}

/// Error returned when constructing a cipher from a key of the wrong length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidKeyLength {
    /// The length that was supplied.
    pub got: usize,
    /// The length that was required.
    pub expected: usize,
}

impl core::fmt::Display for InvalidKeyLength {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid AES key length: got {} bytes, expected {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for InvalidKeyLength {}

/// An expanded AES key, usable for block encryption and decryption.
///
/// # Examples
///
/// ```
/// use sc_crypto::aes::{Aes, KeySize};
///
/// let key = [0u8; 32];
/// let aes = Aes::new(KeySize::Aes256, &key).unwrap();
/// let mut block = *b"sixteen byte blk";
/// let orig = block;
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, orig);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, orig);
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    size: KeySize,
}

impl core::fmt::Debug for Aes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Aes").field("size", &self.size).finish()
    }
}

fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// GF(2^8) multiplication.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

impl Aes {
    /// Expands `key` into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key.len()` does not match `size`.
    pub fn new(size: KeySize, key: &[u8]) -> Result<Self, InvalidKeyLength> {
        if key.len() != size.key_len() {
            return Err(InvalidKeyLength {
                got: key.len(),
                expected: size.key_len(),
            });
        }
        let nk = size.nk();
        let nr = size.rounds();
        let nwords = 4 * (nr + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for (i, word) in w.iter_mut().enumerate().take(nk) {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / nk];
            } else if nk > 6 && i % nk == 4 {
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = Vec::with_capacity(nr + 1);
        for r in 0..=nr {
            let mut rk = [0u8; 16];
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
            round_keys.push(rk);
        }
        Ok(Self { round_keys, size })
    }

    /// Convenience constructor for AES-256.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyLength`] if `key` is not 32 bytes.
    pub fn new_256(key: &[u8]) -> Result<Self, InvalidKeyLength> {
        Self::new(KeySize::Aes256, key)
    }

    /// The key size variant this cipher was constructed with.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    // State layout: state[4*c + r] = byte at row r, column c (column-major,
    // matching the FIPS-197 byte order of the input block).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
            state[4 * c + 1] =
                gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
            state[4 * c + 2] =
                gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
            state[4 * c + 3] =
                gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        Self::add_round_key(block, &self.round_keys[0]);
        for r in 1..nr {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[r]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[nr]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.size.rounds();
        Self::add_round_key(block, &self.round_keys[nr]);
        for r in (1..nr).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[r]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // FIPS-197 Appendix C test vectors.
    #[test]
    fn fips197_aes128() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(KeySize::Aes128, &key).unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192() {
        let key = hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let aes = Aes::new(KeySize::Aes192, &key).unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256() {
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(KeySize::Aes256, &key).unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn rejects_wrong_key_length() {
        let err = Aes::new(KeySize::Aes256, &[0u8; 16]).unwrap_err();
        assert_eq!(err.expected, 32);
        assert_eq!(err.got, 16);
        assert!(err.to_string().contains("invalid AES key length"));
    }

    #[test]
    fn all_key_sizes_roundtrip() {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let key: Vec<u8> = (0..size.key_len() as u8).map(|b| b.wrapping_mul(7)).collect();
            let aes = Aes::new(size, &key).unwrap();
            let mut block = [0xabu8; 16];
            aes.encrypt_block(&mut block);
            aes.decrypt_block(&mut block);
            assert_eq!(block, [0xabu8; 16]);
        }
    }

    #[test]
    fn gmul_known_products() {
        // 0x57 * 0x83 = 0xc1 (FIPS-197 §4.2 example).
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn sbox_and_inverse_are_inverse_permutations() {
        for b in 0u8..=255 {
            assert_eq!(INV_SBOX[SBOX[b as usize] as usize], b);
        }
    }
}
