//! Statistical payload analysis used by the GFW's DPI heuristics: byte
//! entropy, printable ratio, and a chi-squared uniformity score. Deployed
//! censors flag flows whose payloads look like "uniform random bytes with no
//! recognizable protocol header" — the heuristic that caught Shadowsocks.

/// Shannon entropy of a byte slice, in bits per byte (0.0–8.0).
///
/// Returns 0.0 for empty input.
///
/// # Examples
///
/// ```
/// use sc_crypto::entropy::shannon_entropy;
///
/// assert_eq!(shannon_entropy(&[7u8; 64]), 0.0);
/// let all: Vec<u8> = (0..=255).collect();
/// assert!((shannon_entropy(&all) - 8.0).abs() < 1e-9);
/// ```
pub fn shannon_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    let mut h = 0.0;
    for &c in counts.iter() {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Fraction of bytes that are printable ASCII (0x20–0x7e, plus tab/CR/LF).
pub fn printable_ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let printable = data
        .iter()
        .filter(|&&b| (0x20..=0x7e).contains(&b) || b == b'\t' || b == b'\r' || b == b'\n')
        .count();
    printable as f64 / data.len() as f64
}

/// Chi-squared statistic against the uniform byte distribution, normalized
/// by the number of degrees of freedom (255). Values near 1.0 indicate
/// uniform-random-looking data; structured data scores much higher.
pub fn chi_squared_uniform(data: &[u8]) -> f64 {
    if data.len() < 256 {
        // Too little data to judge; report "structured" conservatively.
        return f64::INFINITY;
    }
    let mut counts = [0f64; 256];
    for &b in data {
        counts[b as usize] += 1.0;
    }
    let expected = data.len() as f64 / 256.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c - expected) * (c - expected) / expected)
        .sum();
    chi2 / 255.0
}

/// Summary of a payload's statistical fingerprint, as computed by the GFW's
/// flow analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayloadStats {
    /// Shannon entropy in bits/byte.
    pub entropy: f64,
    /// Printable-ASCII fraction.
    pub printable: f64,
    /// Normalized chi-squared vs uniform.
    pub chi_squared: f64,
    /// Number of bytes analyzed.
    pub len: usize,
}

impl PayloadStats {
    /// Analyzes a payload.
    pub fn analyze(data: &[u8]) -> Self {
        Self {
            entropy: shannon_entropy(data),
            printable: printable_ratio(data),
            chi_squared: chi_squared_uniform(data),
            len: data.len(),
        }
    }

    /// Heuristic: does this look like unstructured high-entropy ciphertext
    /// (the Shadowsocks "fully encrypted traffic" fingerprint)?
    ///
    /// The entropy threshold is length-aware: a uniform random sample of
    /// `n` bytes can reach at most `log2(min(n, 256))` bits of measured
    /// entropy, so small captures are judged against a scaled bound
    /// rather than the asymptotic 8 bits.
    pub fn looks_like_random(&self) -> bool {
        if self.len < 64 || self.printable >= 0.5 {
            return false;
        }
        let max_possible = (self.len.min(256) as f64).log2();
        self.entropy > 0.87 * max_possible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bounds() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0x41; 1000]), 0.0);
        let uniform: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        assert!((shannon_entropy(&uniform) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn text_is_low_entropy_high_printable() {
        let text = b"GET /scholar?q=censorship HTTP/1.1\r\nHost: scholar.google.com\r\n\r\n";
        let stats = PayloadStats::analyze(text);
        assert!(stats.entropy < 6.0);
        assert!(stats.printable > 0.95);
        assert!(!stats.looks_like_random());
    }

    #[test]
    fn short_ciphertext_still_flagged() {
        use crate::aes::{Aes, KeySize};
        use crate::modes::Ctr;
        let aes = Aes::new(KeySize::Aes256, &[5; 32]).unwrap();
        let mut ctr = Ctr::new(aes, [2; 16]);
        // 300 bytes — the size of a Shadowsocks IV + header + TLS hello.
        let mut data = vec![0u8; 300];
        ctr.apply(&mut data);
        assert!(PayloadStats::analyze(&data).looks_like_random());
        // 80 bytes is enough too.
        assert!(PayloadStats::analyze(&data[..80]).looks_like_random());
    }

    #[test]
    fn short_text_not_flagged() {
        let text = b"POST /api/sync HTTP/1.1
Host: cdn.example
Content-Length: 40

";
        assert!(!PayloadStats::analyze(text).looks_like_random());
    }

    #[test]
    fn ciphertext_looks_random() {
        use crate::aes::{Aes, KeySize};
        use crate::modes::Ctr;
        let aes = Aes::new(KeySize::Aes256, &[3; 32]).unwrap();
        let mut ctr = Ctr::new(aes, [1; 16]);
        let mut data = vec![0u8; 4096];
        ctr.apply(&mut data);
        let stats = PayloadStats::analyze(&data);
        assert!(stats.entropy > 7.5, "entropy {}", stats.entropy);
        assert!(stats.looks_like_random());
        assert!(stats.chi_squared < 2.0, "chi2 {}", stats.chi_squared);
    }

    #[test]
    fn chi_squared_flags_structured_data() {
        let structured = vec![b'A'; 4096];
        assert!(chi_squared_uniform(&structured) > 100.0);
        assert_eq!(chi_squared_uniform(&[0u8; 10]), f64::INFINITY);
    }

    #[test]
    fn printable_ratio_counts_whitespace() {
        assert_eq!(printable_ratio(b"a\tb\r\n"), 1.0);
        assert_eq!(printable_ratio(&[0u8, 1, 2, 3]), 0.0);
        assert_eq!(printable_ratio(&[]), 0.0);
    }
}
