//! Message blinding codecs — the core trick of ScholarCloud (§3 of the
//! paper): re-encode already-encrypted bytes with a *confidential* scheme so
//! the GFW's protocol classifiers do not recognize the traffic.
//!
//! The paper notes that "even a simple but non-public algorithm like byte
//! mapping (f: [0,2^8) → [0,2^8))" suffices. We implement that byte-map
//! scheme plus two alternates, and a rotation mechanism so the operator can
//! switch schemes when the censor adapts (the paper's agility argument).

use crate::sha256::sha256;

/// A reversible byte-stream transform applied between the domestic and
/// remote proxies.
///
/// Implementations must satisfy `decode(encode(x)) == x` for any position
/// in the stream; the codec may be stateful (position-dependent).
pub trait Blinder: Send + core::fmt::Debug {
    /// Stable identifier of the scheme, carried in the ScholarCloud frame
    /// header so both proxies agree on the codec.
    fn scheme(&self) -> BlindingScheme;

    /// Encodes `data` in place. `stream_pos` is the byte offset of
    /// `data[0]` within the logical stream, so stateless implementations
    /// can still be position-keyed.
    fn encode(&self, data: &mut [u8], stream_pos: u64);

    /// Decodes `data` in place (inverse of [`Blinder::encode`]).
    fn decode(&self, data: &mut [u8], stream_pos: u64);
}

/// Identifier for the available blinding schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlindingScheme {
    /// No blinding (ablation baseline — ciphertext goes out as-is).
    Identity,
    /// Secret byte permutation `f: [0,256) -> [0,256)` (the paper's example).
    ByteMap,
    /// Position-keyed rolling XOR with a keyed byte stream.
    XorRolling,
    /// Nibble swap composed with a keyed XOR — a cheap format mangler.
    NibbleSwap,
}

impl BlindingScheme {
    /// Wire identifier byte.
    pub fn wire_id(self) -> u8 {
        match self {
            BlindingScheme::Identity => 0,
            BlindingScheme::ByteMap => 1,
            BlindingScheme::XorRolling => 2,
            BlindingScheme::NibbleSwap => 3,
        }
    }

    /// Parses a wire identifier byte.
    pub fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(BlindingScheme::Identity),
            1 => Some(BlindingScheme::ByteMap),
            2 => Some(BlindingScheme::XorRolling),
            3 => Some(BlindingScheme::NibbleSwap),
            _ => None,
        }
    }

    /// Constructs the codec for this scheme from a shared secret key.
    pub fn instantiate(self, key: &[u8]) -> Box<dyn Blinder> {
        match self {
            BlindingScheme::Identity => Box::new(Identity),
            BlindingScheme::ByteMap => Box::new(ByteMap::from_key(key)),
            BlindingScheme::XorRolling => Box::new(XorRolling::from_key(key)),
            BlindingScheme::NibbleSwap => Box::new(NibbleSwap::from_key(key)),
        }
    }

    /// All rotatable schemes, in rotation order (Identity excluded — it is
    /// only an ablation baseline, never deployed).
    pub fn rotation() -> [BlindingScheme; 3] {
        [
            BlindingScheme::ByteMap,
            BlindingScheme::XorRolling,
            BlindingScheme::NibbleSwap,
        ]
    }
}

/// The no-op codec (ablation baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Blinder for Identity {
    fn scheme(&self) -> BlindingScheme {
        BlindingScheme::Identity
    }
    fn encode(&self, _data: &mut [u8], _stream_pos: u64) {}
    fn decode(&self, _data: &mut [u8], _stream_pos: u64) {}
}

/// The paper's byte-mapping scheme: a secret permutation of byte values,
/// derived from a shared key via a keyed Fisher–Yates shuffle.
#[derive(Clone)]
pub struct ByteMap {
    forward: [u8; 256],
    inverse: [u8; 256],
}

impl core::fmt::Debug for ByteMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ByteMap").finish_non_exhaustive()
    }
}

/// A tiny deterministic PRNG (xorshift64*) used only to derive permutations
/// from keys; not exposed publicly.
struct KeyRng(u64);

impl KeyRng {
    fn from_key(key: &[u8], domain: &[u8]) -> Self {
        let mut material = Vec::with_capacity(key.len() + domain.len());
        material.extend_from_slice(domain);
        material.extend_from_slice(key);
        let digest = sha256(&material);
        let seed = u64::from_be_bytes(digest[..8].try_into().unwrap());
        KeyRng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

impl ByteMap {
    /// Derives the secret permutation from a shared key.
    pub fn from_key(key: &[u8]) -> Self {
        let mut rng = KeyRng::from_key(key, b"scholarcloud-bytemap-v1");
        let mut forward = [0u8; 256];
        for (i, f) in forward.iter_mut().enumerate() {
            *f = i as u8;
        }
        // Fisher–Yates keyed shuffle.
        for i in (1..256usize).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            forward.swap(i, j);
        }
        let mut inverse = [0u8; 256];
        for (i, &f) in forward.iter().enumerate() {
            inverse[f as usize] = i as u8;
        }
        Self { forward, inverse }
    }
}

impl Blinder for ByteMap {
    fn scheme(&self) -> BlindingScheme {
        BlindingScheme::ByteMap
    }

    fn encode(&self, data: &mut [u8], _stream_pos: u64) {
        for b in data.iter_mut() {
            *b = self.forward[*b as usize];
        }
    }

    fn decode(&self, data: &mut [u8], _stream_pos: u64) {
        for b in data.iter_mut() {
            *b = self.inverse[*b as usize];
        }
    }
}

/// Rolling XOR: each byte is XORed with a keyed pad indexed by absolute
/// stream position, so the transform is self-synchronizing given the offset.
#[derive(Clone)]
pub struct XorRolling {
    pad: [u8; 1024],
}

impl core::fmt::Debug for XorRolling {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("XorRolling").finish_non_exhaustive()
    }
}

impl XorRolling {
    /// Derives the XOR pad from a shared key.
    pub fn from_key(key: &[u8]) -> Self {
        let mut rng = KeyRng::from_key(key, b"scholarcloud-xorroll-v1");
        let mut pad = [0u8; 1024];
        for chunk in pad.chunks_mut(8) {
            let w = rng.next().to_be_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self { pad }
    }

    fn apply(&self, data: &mut [u8], stream_pos: u64) {
        for (i, b) in data.iter_mut().enumerate() {
            let pos = (stream_pos + i as u64) as usize % self.pad.len();
            // Mix in the position so repeated plaintext does not produce
            // repeated ciphertext at pad-period distance.
            let tweak = ((stream_pos + i as u64) / self.pad.len() as u64) as u8;
            *b ^= self.pad[pos] ^ tweak.wrapping_mul(0x9d);
        }
    }
}

impl Blinder for XorRolling {
    fn scheme(&self) -> BlindingScheme {
        BlindingScheme::XorRolling
    }

    fn encode(&self, data: &mut [u8], stream_pos: u64) {
        self.apply(data, stream_pos);
    }

    fn decode(&self, data: &mut [u8], stream_pos: u64) {
        self.apply(data, stream_pos);
    }
}

/// Nibble swap + keyed XOR. Cheap, and changes the byte-value histogram
/// shape that naive DPI fingerprints key on.
#[derive(Clone)]
pub struct NibbleSwap {
    key_byte: u8,
}

impl core::fmt::Debug for NibbleSwap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NibbleSwap").finish_non_exhaustive()
    }
}

impl NibbleSwap {
    /// Derives the keyed XOR byte from a shared key.
    pub fn from_key(key: &[u8]) -> Self {
        let digest = sha256(key);
        Self {
            key_byte: digest[0] | 1, // never zero
        }
    }
}

impl Blinder for NibbleSwap {
    fn scheme(&self) -> BlindingScheme {
        BlindingScheme::NibbleSwap
    }

    fn encode(&self, data: &mut [u8], stream_pos: u64) {
        for (i, b) in data.iter_mut().enumerate() {
            let x = *b ^ self.key_byte ^ ((stream_pos + i as u64) as u8);
            *b = x.rotate_left(4);
        }
    }

    fn decode(&self, data: &mut [u8], stream_pos: u64) {
        for (i, b) in data.iter_mut().enumerate() {
            let x = b.rotate_right(4);
            *b = x ^ self.key_byte ^ ((stream_pos + i as u64) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(scheme: BlindingScheme) {
        let codec = scheme.instantiate(b"shared secret");
        let plain: Vec<u8> = (0..2048u32).map(|i| (i * 31 % 256) as u8).collect();
        let mut data = plain.clone();
        // Encode in two chunks at different stream positions.
        codec.encode(&mut data[..1000], 0);
        codec.encode(&mut data[1000..], 1000);
        if scheme != BlindingScheme::Identity {
            assert_ne!(data, plain, "{scheme:?} must change the bytes");
        }
        codec.decode(&mut data[..500], 0);
        codec.decode(&mut data[500..], 500);
        assert_eq!(data, plain, "{scheme:?} roundtrip");
    }

    #[test]
    fn all_schemes_roundtrip() {
        for scheme in [
            BlindingScheme::Identity,
            BlindingScheme::ByteMap,
            BlindingScheme::XorRolling,
            BlindingScheme::NibbleSwap,
        ] {
            roundtrip(scheme);
        }
    }

    #[test]
    fn wire_ids_roundtrip() {
        for scheme in [
            BlindingScheme::Identity,
            BlindingScheme::ByteMap,
            BlindingScheme::XorRolling,
            BlindingScheme::NibbleSwap,
        ] {
            assert_eq!(BlindingScheme::from_wire_id(scheme.wire_id()), Some(scheme));
        }
        assert_eq!(BlindingScheme::from_wire_id(200), None);
    }

    #[test]
    fn bytemap_is_a_permutation() {
        let map = ByteMap::from_key(b"k");
        let mut seen = [false; 256];
        for b in 0u8..=255 {
            let mut x = [b];
            map.encode(&mut x, 0);
            assert!(!seen[x[0] as usize], "duplicate output {:#x}", x[0]);
            seen[x[0] as usize] = true;
        }
    }

    #[test]
    fn different_keys_give_different_maps() {
        let a = ByteMap::from_key(b"key-a");
        let b = ByteMap::from_key(b"key-b");
        let mut xa = *b"some sample data";
        let mut xb = *b"some sample data";
        a.encode(&mut xa, 0);
        b.encode(&mut xb, 0);
        assert_ne!(xa, xb);
    }

    #[test]
    fn xor_rolling_differs_beyond_pad_period() {
        let codec = XorRolling::from_key(b"k");
        let mut first = vec![0u8; 16];
        let mut later = vec![0u8; 16];
        codec.encode(&mut first, 0);
        codec.encode(&mut later, 1024); // same pad offset, different period
        assert_ne!(first, later);
    }

    #[test]
    fn rotation_excludes_identity() {
        assert!(!BlindingScheme::rotation().contains(&BlindingScheme::Identity));
    }
}
