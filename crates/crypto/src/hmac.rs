//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), used for tunnel key
//! derivation and message authentication in the simulated handshakes.

use crate::sha256::{sha256, Sha256};

/// Computes HMAC-SHA256 over `data` with `key`.
///
/// # Examples
///
/// ```
/// use sc_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key` (any length; long keys are hashed).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            block_key[..32].copy_from_slice(&sha256(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_hash = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }
}

/// Constant-time equality for MAC tags.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// HKDF-Extract (RFC 5869 §2.2).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand (RFC 5869 §2.3).
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` (the RFC limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output length exceeds RFC 5869 limit");
    let mut out = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize().to_vec();
        let take = (out_len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// One-call HKDF (extract then expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, out_len)
}

/// Derives a fixed-size key from a password the way Shadowsocks' `EVP_BytesToKey`
/// does (MD5 chain in the original; we use a SHA-256 chain — the derivation
/// shape, password → key bytes, is what matters to the simulation).
pub fn bytes_to_key(password: &[u8], key_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(key_len);
    let mut prev: Vec<u8> = Vec::new();
    while out.len() < key_len {
        let mut h = Sha256::new();
        h.update(&prev);
        h.update(password);
        prev = h.finalize().to_vec();
        let take = (key_len - out.len()).min(32);
        out.extend_from_slice(&prev[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_vec(),
            hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    // RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_long_key() {
        let key = vec![0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = vec![0x0b; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            okm,
            hex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn bytes_to_key_is_deterministic_and_sized() {
        let k1 = bytes_to_key(b"barfoo!", 32);
        let k2 = bytes_to_key(b"barfoo!", 32);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 32);
        let k3 = bytes_to_key(b"other", 32);
        assert_ne!(k1, k3);
        assert_eq!(bytes_to_key(b"x", 48).len(), 48);
    }
}
