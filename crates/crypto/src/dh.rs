//! Finite-field Diffie–Hellman key agreement used by the simulated TLS and
//! OpenVPN control-channel handshakes.
//!
//! The group is a 61-bit Mersenne prime, which keeps arithmetic in `u128`
//! and the simulation fast. That is obviously **not** cryptographically
//! strong — it does not need to be: the adversary in this reproduction is a
//! traffic *classifier*, not a cryptanalyst, and the handshake's observable
//! properties (message sizes, round trips, high-entropy shared secrets) are
//! preserved. See DESIGN.md §2.

/// The group modulus: the Mersenne prime `2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// The group generator.
pub const GENERATOR: u64 = 5;

fn mulmod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % MODULUS as u128) as u64
}

/// Modular exponentiation `base^exp mod MODULUS`.
pub fn powmod(mut base: u64, mut exp: u64) -> u64 {
    base %= MODULUS;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base);
        }
        base = mulmod(base, base);
        exp >>= 1;
    }
    acc
}

/// A Diffie–Hellman private key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(u64);

/// A Diffie–Hellman public key (group element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub u64);

impl PrivateKey {
    /// Creates a private key from raw entropy. Zero exponents are remapped
    /// so the public key is never the identity.
    pub fn from_entropy(entropy: u64) -> Self {
        let e = entropy % (MODULUS - 2);
        PrivateKey(e.max(2))
    }

    /// The corresponding public key `g^x`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(powmod(GENERATOR, self.0))
    }

    /// Computes the shared secret with a peer's public key, expanded to a
    /// 32-byte key via SHA-256.
    pub fn agree(&self, peer: &PublicKey) -> [u8; 32] {
        let shared = powmod(peer.0, self.0);
        crate::sha256::sha256(&shared.to_be_bytes())
    }
}

impl PublicKey {
    /// Serializes the public key for the wire.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parses a public key from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the element is outside the group (0, 1, or ≥ modulus),
    /// which rejects degenerate small-subgroup handshakes.
    pub fn from_bytes(bytes: [u8; 8]) -> Result<Self, InvalidGroupElement> {
        let v = u64::from_be_bytes(bytes);
        if v <= 1 || v >= MODULUS {
            return Err(InvalidGroupElement(v));
        }
        Ok(PublicKey(v))
    }
}

/// Error for out-of-group public key material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGroupElement(pub u64);

impl core::fmt::Display for InvalidGroupElement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid Diffie-Hellman group element: {}", self.0)
    }
}

impl std::error::Error for InvalidGroupElement {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_secret_agrees() {
        let a = PrivateKey::from_entropy(0x1234_5678_9abc_def0);
        let b = PrivateKey::from_entropy(0x0fed_cba9_8765_4321);
        let s1 = a.agree(&b.public_key());
        let s2 = b.agree(&a.public_key());
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_peers_differ() {
        let a = PrivateKey::from_entropy(11);
        let b = PrivateKey::from_entropy(22);
        let c = PrivateKey::from_entropy(33);
        assert_ne!(a.agree(&b.public_key()), a.agree(&c.public_key()));
    }

    #[test]
    fn powmod_small_cases() {
        assert_eq!(powmod(2, 10), 1024);
        assert_eq!(powmod(GENERATOR, 0), 1);
        assert_eq!(powmod(GENERATOR, 1), GENERATOR);
        // Fermat: g^(p-1) = 1 mod p.
        assert_eq!(powmod(GENERATOR, MODULUS - 1), 1);
    }

    #[test]
    fn public_key_wire_roundtrip() {
        let k = PrivateKey::from_entropy(987654321).public_key();
        let parsed = PublicKey::from_bytes(k.to_bytes()).unwrap();
        assert_eq!(parsed, k);
    }

    #[test]
    fn rejects_degenerate_elements() {
        assert!(PublicKey::from_bytes(0u64.to_be_bytes()).is_err());
        assert!(PublicKey::from_bytes(1u64.to_be_bytes()).is_err());
        assert!(PublicKey::from_bytes(MODULUS.to_be_bytes()).is_err());
        assert!(PublicKey::from_bytes(2u64.to_be_bytes()).is_ok());
    }

    #[test]
    fn zero_entropy_still_valid() {
        let k = PrivateKey::from_entropy(0);
        assert!(k.public_key().0 > 1);
    }
}
