//! Block cipher modes of operation: CFB (as used by Shadowsocks'
//! `aes-256-cfb` method) and CTR (used by the simulated TLS record layer).

use crate::aes::Aes;

/// AES-CFB streaming encryptor/decryptor with full-block (128-bit) feedback.
///
/// Shadowsocks' classic stream-cipher methods use CFB with a random IV sent
/// in the clear at the start of each connection; this type reproduces that
/// construction byte for byte.
///
/// # Examples
///
/// ```
/// use sc_crypto::aes::{Aes, KeySize};
/// use sc_crypto::modes::Cfb;
///
/// let aes = Aes::new(KeySize::Aes256, &[7u8; 32]).unwrap();
/// let iv = [9u8; 16];
/// let mut enc = Cfb::new(aes.clone(), iv);
/// let mut dec = Cfb::new(aes, iv);
///
/// let mut data = b"attack at dawn".to_vec();
/// enc.encrypt(&mut data);
/// dec.decrypt(&mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct Cfb {
    cipher: Aes,
    register: [u8; 16],
    keystream: [u8; 16],
    offset: usize,
}

impl Cfb {
    /// Creates a CFB stream from a block cipher and IV.
    pub fn new(cipher: Aes, iv: [u8; 16]) -> Self {
        Self {
            cipher,
            register: iv,
            keystream: [0; 16],
            offset: 16,
        }
    }

    fn refill(&mut self) {
        self.keystream = self.register;
        self.cipher.encrypt_block(&mut self.keystream);
        self.offset = 0;
    }

    /// Encrypts `data` in place, advancing the stream state.
    pub fn encrypt(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == 16 {
                self.refill();
            }
            *byte ^= self.keystream[self.offset];
            // In CFB the *ciphertext* feeds back into the shift register.
            self.register[self.offset] = *byte;
            self.offset += 1;
            if self.offset == 16 {
                // Register now holds the last ciphertext block; keystream
                // will be refilled from it on the next byte.
            }
        }
    }

    /// Decrypts `data` in place, advancing the stream state.
    pub fn decrypt(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == 16 {
                self.refill();
            }
            let cipher_byte = *byte;
            *byte ^= self.keystream[self.offset];
            self.register[self.offset] = cipher_byte;
            self.offset += 1;
        }
    }
}

/// AES-CTR keystream cipher. Encryption and decryption are identical.
///
/// # Examples
///
/// ```
/// use sc_crypto::aes::{Aes, KeySize};
/// use sc_crypto::modes::Ctr;
///
/// let aes = Aes::new(KeySize::Aes128, &[1u8; 16]).unwrap();
/// let mut a = Ctr::new(aes.clone(), [0u8; 16]);
/// let mut b = Ctr::new(aes, [0u8; 16]);
/// let mut data = vec![0u8; 100];
/// a.apply(&mut data);
/// b.apply(&mut data);
/// assert_eq!(data, vec![0u8; 100]);
/// ```
#[derive(Debug, Clone)]
pub struct Ctr {
    cipher: Aes,
    counter: [u8; 16],
    keystream: [u8; 16],
    offset: usize,
}

impl Ctr {
    /// Creates a CTR stream with the given initial counter block.
    pub fn new(cipher: Aes, nonce: [u8; 16]) -> Self {
        Self {
            cipher,
            counter: nonce,
            keystream: [0; 16],
            offset: 16,
        }
    }

    fn increment_counter(&mut self) {
        for i in (0..16).rev() {
            self.counter[i] = self.counter[i].wrapping_add(1);
            if self.counter[i] != 0 {
                break;
            }
        }
    }

    fn refill(&mut self) {
        self.keystream = self.counter;
        self.cipher.encrypt_block(&mut self.keystream);
        self.increment_counter();
        self.offset = 0;
    }

    /// XORs the keystream into `data` (encrypts or decrypts).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == 16 {
                self.refill();
            }
            *byte ^= self.keystream[self.offset];
            self.offset += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::KeySize;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // NIST SP 800-38A F.3.13 (CFB128-AES256 encrypt, first two blocks).
    #[test]
    fn nist_cfb128_aes256() {
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes::new(KeySize::Aes256, &key).unwrap();
        let mut cfb = Cfb::new(aes, iv);
        let mut data = hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51");
        cfb.encrypt(&mut data);
        assert_eq!(
            data,
            hex("dc7e84bfda79164b7ecd8486985d386039ffed143b28b1c832113c6331e5407b")
        );
    }

    // NIST SP 800-38A F.5.5 (CTR-AES256, first block).
    #[test]
    fn nist_ctr_aes256() {
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let nonce: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let aes = Aes::new(KeySize::Aes256, &key).unwrap();
        let mut ctr = Ctr::new(aes, nonce);
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        ctr.apply(&mut data);
        assert_eq!(data, hex("601ec313775789a5b7a7f504bbf3d228"));
    }

    #[test]
    fn cfb_roundtrip_across_block_boundaries() {
        let aes = Aes::new(KeySize::Aes256, &[0x42; 32]).unwrap();
        let iv = [0x17; 16];
        let plain: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut enc = Cfb::new(aes.clone(), iv);
        let mut dec = Cfb::new(aes, iv);
        let mut data = plain.clone();
        // Encrypt in irregular chunks to exercise stream-state carry-over.
        let mut pos = 0;
        for chunk in [1usize, 15, 16, 17, 31, 100, 300, 520] {
            let end = (pos + chunk).min(data.len());
            enc.encrypt(&mut data[pos..end]);
            pos = end;
        }
        enc.encrypt(&mut data[pos..]);
        dec.decrypt(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn ctr_counter_wraps_correctly() {
        let aes = Aes::new(KeySize::Aes128, &[0; 16]).unwrap();
        let mut ctr = Ctr::new(aes, [0xff; 16]);
        // Consuming more than one block forces a counter increment across
        // the all-0xff boundary (wrap to zero) without panicking.
        let mut data = [0u8; 48];
        ctr.apply(&mut data);
        assert_ne!(&data[0..16], &data[16..32]);
    }
}
