//! Property-based tests on the cryptographic primitives' invariants.

use proptest::prelude::*;
use sc_crypto::aes::{Aes, KeySize};
use sc_crypto::blinding::BlindingScheme;
use sc_crypto::hmac::{hkdf, hmac_sha256};
use sc_crypto::modes::{Cfb, Ctr};
use sc_crypto::sha256::{Sha256, sha256};

proptest! {
    /// Block encryption is invertible for every key size.
    #[test]
    fn aes_roundtrip(key in prop::collection::vec(any::<u8>(), 32), block: [u8; 16]) {
        let aes = Aes::new(KeySize::Aes256, &key).unwrap();
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// Distinct keys (almost surely) produce distinct ciphertexts.
    #[test]
    fn aes_distinct_keys_distinct_output(k1 in prop::collection::vec(any::<u8>(), 32),
                                         k2 in prop::collection::vec(any::<u8>(), 32)) {
        prop_assume!(k1 != k2);
        let a = Aes::new(KeySize::Aes256, &k1).unwrap();
        let b = Aes::new(KeySize::Aes256, &k2).unwrap();
        let mut x = [0u8; 16];
        let mut y = [0u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        prop_assert_ne!(x, y);
    }

    /// CFB decrypt(encrypt(x)) == x under arbitrary chunking on both sides.
    #[test]
    fn cfb_roundtrip_arbitrary_chunks(
        key in prop::collection::vec(any::<u8>(), 32),
        iv: [u8; 16],
        data in prop::collection::vec(any::<u8>(), 0..2000),
        enc_chunk in 1usize..97,
        dec_chunk in 1usize..97,
    ) {
        let mut enc = Cfb::new(Aes::new(KeySize::Aes256, &key).unwrap(), iv);
        let mut dec = Cfb::new(Aes::new(KeySize::Aes256, &key).unwrap(), iv);
        let mut wire = data.clone();
        for chunk in wire.chunks_mut(enc_chunk) {
            enc.encrypt(chunk);
        }
        for chunk in wire.chunks_mut(dec_chunk) {
            dec.decrypt(chunk);
        }
        prop_assert_eq!(wire, data);
    }

    /// CTR is an involution when re-keyed identically.
    #[test]
    fn ctr_involution(key in prop::collection::vec(any::<u8>(), 32), nonce: [u8; 16],
                      data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let mut a = Ctr::new(Aes::new(KeySize::Aes256, &key).unwrap(), nonce);
        let mut b = Ctr::new(Aes::new(KeySize::Aes256, &key).unwrap(), nonce);
        let mut x = data.clone();
        a.apply(&mut x);
        b.apply(&mut x);
        prop_assert_eq!(x, data);
    }

    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental(data in prop::collection::vec(any::<u8>(), 0..3000), split in 0usize..3000) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// HMAC differs when the key differs.
    #[test]
    fn hmac_key_sensitivity(k1 in prop::collection::vec(any::<u8>(), 1..64),
                            k2 in prop::collection::vec(any::<u8>(), 1..64),
                            msg in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
    }

    /// HKDF output length is exactly as requested.
    #[test]
    fn hkdf_length(salt in prop::collection::vec(any::<u8>(), 0..32),
                   ikm in prop::collection::vec(any::<u8>(), 1..64),
                   len in 1usize..1000) {
        prop_assert_eq!(hkdf(&salt, &ikm, b"t", len).len(), len);
    }

    /// Every blinding scheme round-trips under arbitrary stream splits.
    #[test]
    fn blinding_roundtrip(scheme_id in 0u8..4,
                          key in prop::collection::vec(any::<u8>(), 1..48),
                          data in prop::collection::vec(any::<u8>(), 0..1500),
                          split in 0usize..1500) {
        let scheme = BlindingScheme::from_wire_id(scheme_id).unwrap();
        let codec = scheme.instantiate(&key);
        let split = split.min(data.len());
        let mut wire = data.clone();
        codec.encode(&mut wire[..split], 0);
        codec.encode(&mut wire[split..], split as u64);
        let mut out = wire;
        codec.decode(&mut out[..split], 0);
        codec.decode(&mut out[split..], split as u64);
        prop_assert_eq!(out, data);
    }
}
