//! Arms-race lab: a *reactive* GFW — traffic classifier, learned
//! signatures, active-probing campaigns — against ScholarCloud's
//! detection-driven defenses (probe-resistant remote + scheme
//! rotation keyed to what the censor is actually doing).
//!
//! The paper's threat model (§6) is a censor that can learn a blinding
//! scheme's traffic signature and actively probe suspected proxies;
//! its answer is that the operator controls both ends and can rotate
//! the scheme faster than the censor can re-learn it. This lab puts a
//! number on that claim. The adaptive censor (`sc_gfw::adaptive`):
//!
//! * scores every flow crossing the border (fan-in, cadence, repeated
//!   preamble) and fingerprints the cover preamble; after enough
//!   matching flows the prefix is promoted to a **learned signature**
//!   enforced as a connection RESET;
//! * launches **probing campaigns** against suspicious servers,
//!   replaying captured preambles — a remote without replay protection
//!   would authenticate the probe and unmask itself;
//! * drifts per-region enforcement, so blocking is inconsistent the
//!   way the real GFW is.
//!
//! Two arms run the identical workload under the identical censor:
//!
//! * **rotation-off** — the paper's deployment frozen: one blinding
//!   scheme forever. The censor learns its cover preamble once; every
//!   later tunnel matches the signature, gets RESET, and the matching
//!   traffic keeps the signature's TTL refreshed. Availability
//!   collapses.
//! * **rotation-on** — the domestic proxy watches its own evidence
//!   stream (breaker-opens + probe sightings shared by the remote) and
//!   rotates the blinding scheme when it accumulates; the new scheme's
//!   cover preamble no longer matches the learned signature, the old
//!   signature starves and expires, and the race repeats from zero.
//!
//! In both arms the remote's replay cache deflects every replayed
//! probe to the nginx-style decoy, so the censor's **detection rate
//! stays 0%** — probing never confirms the proxy; only the passive
//! signature ever bites.
//!
//! Assertions: the censor actually learns and campaigns in both arms,
//! no probe is ever confirmed, rotation-off availability collapses
//! below 60%, rotation-on holds at or above 90%, and the whole thing
//! replays exactly per seed.
//!
//! With `SC_TRACE=/tmp/arms_race.jsonl` the **last** run's trace (the
//! rotation-on arm — each run overwrites the file) feeds `scholar-obs
//! --min-availability-under-campaign --max-detection-rate`, the CI
//! smoke gate in `scripts/check.sh`.
//!
//! Run with: `cargo run --example arms_race_lab`
//!
//! `cargo run --example arms_race_lab -- --sweep` sweeps the
//! classifier's learning threshold × rotation on/off and prints the
//! detection-pressure-vs-availability table recorded in
//! `EXPERIMENTS.md`.

use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::time::SimDuration;

const SEED: u64 = 4242;
const CLIENTS: usize = 4;
const LOADS: usize = 12;
const INTERVAL_S: u64 = 10;
const TIMEOUT_S: u64 = 8;
/// Flows matching a fingerprint before the censor promotes it to a
/// blockable signature (the lab default; `--sweep` varies it).
const LEARN_FLOWS: u32 = 6;
/// Fresh evidence (breaker-opens + probe sightings) before the
/// domestic proxy rotates: 1 = rotate at the first breaker trip.
const ROTATION_THRESHOLD: u64 = 1;
const ROTATION_COOLDOWN_S: u64 = 5;

/// Everything one arm yields for the table and the assertions.
struct RunStats {
    ok: usize,
    failed: usize,
    signatures: u64,
    campaigns: u64,
    probes_launched: u64,
    probes_confirmed: u64,
    probes_deflected: u64,
    rotations: u64,
    blacklisted: u64,
}

impl RunStats {
    fn availability(&self) -> f64 {
        if self.ok + self.failed == 0 {
            return 0.0;
        }
        self.ok as f64 / (self.ok + self.failed) as f64
    }
}

fn run_once(learn_flows: u32, rotation: bool, verbose: bool) -> RunStats {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, SEED);
    cfg.clients = CLIENTS;
    cfg.loads = LOADS;
    cfg.interval = SimDuration::from_secs(INTERVAL_S);
    cfg.timeout = SimDuration::from_secs(TIMEOUT_S);
    cfg.extra_runtime = SimDuration::from_secs(20);
    cfg.sc_adaptive = true;
    cfg.sc_adaptive_learn_flows = learn_flows;
    if rotation {
        cfg.sc_adaptive_rotation = true;
        cfg.sc_adaptive_rotation_threshold = ROTATION_THRESHOLD;
        cfg.sc_adaptive_rotation_cooldown = SimDuration::from_secs(ROTATION_COOLDOWN_S);
    }

    let built = build_scenario(&cfg);
    if verbose {
        println!(
            "arm={}: clients={CLIENTS}, loads={LOADS}, learn_flows={learn_flows}, runtime={}s",
            if rotation { "rotation-on" } else { "rotation-off" },
            built.runtime().as_secs_f64(),
        );
    }
    let outcome = built.finish();
    if verbose {
        print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
    }

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);
    let stats = RunStats {
        ok: 0,
        failed: 0,
        signatures: counter("gfw.adaptive_signatures_learned"),
        campaigns: counter("gfw.adaptive_campaigns"),
        probes_launched: counter("gfw.probes_launched"),
        probes_confirmed: counter("gfw.servers_confirmed"),
        probes_deflected: counter("scholarcloud.decoys_served"),
        rotations: counter("scholarcloud.adaptive_rotations"),
        blacklisted: counter("gfw.adaptive_blacklisted"),
    };
    drop(guard);

    let mut ok = 0usize;
    let mut failed = 0usize;
    for r in outcome.loads.iter().flatten() {
        if r.failed {
            failed += 1;
        } else {
            ok += 1;
        }
    }
    RunStats { ok, failed, ..stats }
}

/// Sweeps the classifier's learning threshold × rotation on/off: the
/// detection-pressure-vs-availability table for EXPERIMENTS.md.
fn sweep() {
    println!("--- arms-race sweep: detection pressure vs availability ---");
    println!(
        "{:>12} {:>13} {:>4} {:>7} {:>13} {:>11} {:>10} {:>10}",
        "learn_flows", "arm", "ok", "failed", "availability", "signatures", "campaigns", "rotations"
    );
    for learn_flows in [3u32, 6, 12] {
        for rotation in [false, true] {
            let s = run_once(learn_flows, rotation, false);
            println!(
                "{:>12} {:>13} {:>4} {:>7} {:>12.1}% {:>11} {:>10} {:>10}",
                learn_flows,
                if rotation { "rotation-on" } else { "rotation-off" },
                s.ok,
                s.failed,
                s.availability() * 100.0,
                s.signatures,
                s.campaigns,
                s.rotations,
            );
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--sweep") {
        sweep();
        return;
    }

    println!("--- arms-race lab: reactive GFW vs detection-driven scheme rotation ---");
    // Rotation-off control first, rotation-on treatment LAST: each run
    // rewrites SC_TRACE, and the check.sh gate must analyze the
    // defended arm.
    let control = run_once(LEARN_FLOWS, false, true);
    let defended = run_once(LEARN_FLOWS, true, true);

    for (name, s) in [("rotation-off", &control), ("rotation-on", &defended)] {
        println!(
            "{name}: {} ok / {} failed — availability {:.1}%; censor learned {} signatures, \
             ran {} campaigns, launched {} probes ({} confirmed, {} deflected), \
             blacklisted {}; defense rotated {}×",
            s.ok,
            s.failed,
            s.availability() * 100.0,
            s.signatures,
            s.campaigns,
            s.probes_launched,
            s.probes_confirmed,
            s.probes_deflected,
            s.blacklisted,
            s.rotations,
        );
    }

    // 1. The censor is actually reactive in both arms: it fingerprints
    //    the cover preamble and promotes it to a learned signature.
    assert!(control.signatures >= 1, "censor must learn the frozen scheme's signature");
    assert!(defended.signatures >= 1, "censor must learn at least the first scheme");
    // 2. Suspicion escalates to an active-probing campaign.
    assert!(control.campaigns >= 1, "suspicion must escalate to a probing campaign");
    assert!(control.probes_launched >= 1, "campaigns must launch probes");
    // 3. Probe resistance holds in BOTH arms: the replay cache serves
    //    the decoy, so no probe ever confirms the proxy and the
    //    adaptive blacklist never fires.
    for (name, s) in [("rotation-off", &control), ("rotation-on", &defended)] {
        assert_eq!(
            s.probes_confirmed, 0,
            "{name}: active probes must never confirm the remote"
        );
        assert_eq!(s.blacklisted, 0, "{name}: the adaptive blacklist must never fire");
        assert!(
            s.probes_launched == 0 || s.probes_deflected >= 1,
            "{name}: probed remotes must answer with the decoy"
        );
    }
    // 4. Frozen scheme: the learned signature RESETs every later
    //    tunnel and availability collapses.
    assert!(
        control.availability() < 0.60,
        "rotation-off availability {:.1}% should collapse below 60%",
        control.availability() * 100.0
    );
    assert_eq!(control.rotations, 0, "control arm must not rotate");
    // 5. Detection-driven rotation: evidence (breaker opens + probe
    //    sightings) triggers a scheme change, the signature starves,
    //    and availability holds.
    assert!(defended.rotations >= 1, "defended arm must rotate at least once");
    assert!(
        defended.availability() >= 0.90,
        "rotation-on availability {:.1}% should hold at or above 90%",
        defended.availability() * 100.0
    );
    // 6. Determinism: the same seed replays the same race.
    let replay = run_once(LEARN_FLOWS, true, false);
    assert_eq!(
        (defended.ok, defended.failed, defended.signatures, defended.rotations),
        (replay.ok, replay.failed, replay.signatures, replay.rotations),
        "defended arm must replay exactly"
    );

    println!("arms-race lab: all detection + availability assertions passed");
}
