//! Regenerates the paper's figures: `cargo run --release --example
//! paper_figures [fig3|fig5|fig6|fig7|ablations|all]`.
//!
//! Prints each figure's data with the paper's reported values alongside.

use sc_metrics::{
    FIG7_CLIENTS, Method, ablation_agility, ablation_blinding, ablation_ss_keepalive, fig3_survey,
    fig5_all, fig6_all, fig7_method,
};
use sc_metrics::report::{render_fig3, render_fig5, render_fig6, render_fig7};

fn main() {
    // SC_TRACE=trace.jsonl streams every instrumented event to a file.
    let _obs = sc_metrics::trace::obs_from_env();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let seed = 2017;

    if which == "fig3" || which == "all" {
        println!("{}", render_fig3(&fig3_survey(371, seed)));
        println!("(shares converge to the paper's with larger samples; try 100000)\n");
    }
    if which == "fig5" || which == "all" {
        let rows = fig5_all(seed, 10);
        println!("{}", render_fig5(&rows));
        println!("paper: PLT subs — VPNs 1.2–1.5 s, Tor 2.8 s, SS 3.7 s, SC 1.3 s;");
        println!("       PLT first — Tor ≈15 s (≤20 s), SC 2.1 s;");
        println!("       RTT — Tor ≈330 ms, others in the 100–700 ms band;");
        println!("       PLR — Tor 4.4%, SS 0.77%, native VPN 0.21%, SC 0.22%\n");
    }
    if which == "fig6" || which == "all" {
        let rows = fig6_all(seed);
        println!("{}", render_fig6(&rows));
        println!("paper: direct ≈19 KB; tunnels add 8–14 KB; CPU 3.07→3.62%;");
        println!("       memory before: Tor ≈70% above Chrome; after: +30…+90 MB\n");
    }
    if which == "fig7" || which == "all" {
        let methods = [
            Method::NativeVpn,
            Method::OpenVpn,
            Method::Shadowsocks,
            Method::ScholarCloud,
        ];
        let curves: Vec<_> = methods
            .into_iter()
            .map(|m| (m, fig7_method(m, seed, &FIG7_CLIENTS)))
            .collect();
        println!("{}", render_fig7(&curves));
        println!("paper: Shadowsocks knees past 60 clients; others grow linearly;");
        println!("       OpenVPN and ScholarCloud grow most gently\n");
    }
    if which == "ablations" || which == "all" {
        let (on, off, resets) = ablation_blinding(seed);
        println!("Ablation — message blinding:");
        println!(
            "  blinding ON : fail rate {:.1}%  PLR {:.3}%",
            on.failure_rate * 100.0,
            on.plr * 100.0
        );
        println!(
            "  blinding OFF: fail rate {:.1}%  PLR {:.3}%  (embedded-SNI resets: {resets})",
            off.failure_rate * 100.0,
            off.plr * 100.0
        );
        let (before, after) = ablation_agility(seed);
        println!("Ablation — scheme agility after a GFW rule update:");
        println!("  before rotation: degradation index {before:.2}");
        println!("  after  rotation: degradation index {after:.2}");
        let sweep = ablation_ss_keepalive(seed, &[1, 10, 120]);
        println!("Ablation — Shadowsocks keep-alive window vs mean PLT:");
        for (w, plt) in sweep {
            println!("  keepalive {w:>4} s → subsequent PLT {plt:.2} s");
        }
    }
}
