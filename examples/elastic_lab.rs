//! Elastic lab: the GFW runs a multi-wave blacklisting campaign
//! against ScholarCloud's remote tier, and an elastic serverless pool
//! (autoscaler + churn-on-blacklist) beats a static 4-VM pool on
//! **both** cost per successful load and availability.
//!
//! The paper's deployment keeps its remote proxies on always-on VMs
//! (§5: 2 VMs ≈ 2.2 USD/day) and survives blacklisting by manually
//! rotating IPs. This scenario puts the censor on a schedule: every
//! wave it blacklists the remote IPs it sees serving. Two arms run
//! the identical workload and campaign:
//!
//! * **static** — the paper's answer scaled up: 4 always-on remote
//!   VMs at fixed addresses. Each wave permanently darkens one; after
//!   the last wave the whole pool is dark and whitelisted requests
//!   die as fail-fast 503s. The bill runs 4 VM-hours per hour
//!   regardless of demand.
//! * **elastic** — [`ElasticConfig`] serverless tier behind the same
//!   domestic proxy: a seeded-warm minimum, demand-driven scale-out
//!   with deterministic cold starts, idle scale-in, and — the part
//!   the censor cannot starve — *churn*: a blacklisted instance's
//!   breaker opens, the autoscaler drains it and provisions a
//!   replacement at a fresh address from a /24 it has barely used.
//!   Each wave blacklists the longest-serving warm instance, resolved
//!   **at fire time** from [`ElasticHandle::warm_addrs`] (a
//!   [`Fault::Callback`]), so the censor always hits an IP that is
//!   actually serving, and the bill meters invocations + egress +
//!   warm-idle only.
//!
//! Assertions: the elastic arm strictly beats the static arm on
//! availability AND on metered cost per successful load (both arms
//! priced under the same arithmetic — egress billed identically,
//! static VM-hours vs elastic invocation/egress/warm meters), churn
//! actually happened (every wave retired + replaced an instance), and
//! the whole thing replays byte-for-byte deterministically.
//!
//! With `SC_TRACE=/tmp/elastic.jsonl` the **last** run's trace (the
//! elastic arm — each run overwrites the file) feeds `scholar-obs
//! --min-availability --max-cost-per-load`, the CI smoke gate in
//! `scripts/check.sh`.
//!
//! Run with: `cargo run --example elastic_lab`
//!
//! `cargo run --example elastic_lab -- --sweep` sweeps static pool
//! size × elastic on/off under the same campaign and prints the
//! cost-vs-availability table recorded in `EXPERIMENTS.md`.

use sc_core::ElasticConfig;
use sc_gfw::GfwHandle;
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::addr::Addr;
use sc_simnet::faults::{Fault, FaultPlan};
use sc_simnet::time::{SimDuration, SimTime};

const SEED: u64 = 7171;
const CLIENTS: usize = 6;
const LOADS: usize = 10;
const INTERVAL_S: u64 = 12;
const TIMEOUT_S: u64 = 8;
/// The control arm: the paper's deployment scaled to four VMs.
const STATIC_POOL: usize = 4;
/// Fresh addresses the elastic tier may burn through while churning.
const ELASTIC_ADDRS: usize = 12;
const ELASTIC_MIN: usize = 1;
const ELASTIC_MAX: usize = 6;
/// Wave schedule, shared by both arms: one blacklist verdict per
/// wave. Four waves exactly cover the static pool — after the last
/// one the control arm is fully dark.
const WAVES: &[u64] = &[30, 55, 80, 105];

/// Everything one arm yields for the table and the assertions.
struct RunStats {
    ok: usize,
    failed: usize,
    /// Total metered (elastic) or priced (static) cost, micro-dollars.
    cost_micro: u64,
    /// Elastic lifecycle counters (zero for the static arm).
    provisions: u64,
    retires: u64,
    churns: u64,
    invocations: u64,
    failovers: u64,
    breaker_transitions: u64,
}

impl RunStats {
    fn availability(&self) -> f64 {
        if self.ok + self.failed == 0 {
            return 0.0;
        }
        self.ok as f64 / (self.ok + self.failed) as f64
    }

    /// Micro-dollars per successful page load (infinite when nothing
    /// succeeded — an unavailable service is infinitely expensive).
    fn cost_per_ok_micro(&self) -> f64 {
        if self.ok == 0 {
            return f64::INFINITY;
        }
        self.cost_micro as f64 / self.ok as f64
    }
}

/// A fault that blacklists the longest-serving warm elastic instance
/// at fire time — the censor targets the IP it has watched serve the
/// most traffic, not an address fixed when the plan was written.
fn blacklist_oldest_warm(gfw: &GfwHandle, elastic: &sc_core::ElasticHandle) -> Fault {
    let gfw = gfw.clone();
    let elastic = elastic.clone();
    Fault::Callback {
        label: "gfw_blacklist_warm",
        apply: Box::new(move |now| {
            let Some(addr) = elastic.warm_addrs().first().copied() else {
                return;
            };
            blacklist_now(&gfw, addr, now);
        }),
    }
}

/// The shared blacklist mutation both arms use: add `addr/32` and
/// leave the same `gfw/fault/blacklist_ip` trace event the canned
/// [`sc_gfw::blacklist_ip`] fault leaves.
fn blacklist_now(gfw: &GfwHandle, addr: Addr, now: SimTime) {
    let mut st = gfw.borrow_mut();
    if !st.config.ip_blacklist.contains(&(addr, 32)) {
        st.config.ip_blacklist.push((addr, 32));
    }
    sc_obs::counter_add("gfw.blacklist_updates", 1);
    sc_obs::emit(
        sc_obs::Event::new(now.as_micros(), sc_obs::Level::Info, "gfw", "fault", "blacklist_ip")
            .field("addr", addr.to_string()),
    );
}

fn run_once(static_pool: usize, elastic: bool, verbose: bool) -> RunStats {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, SEED);
    cfg.clients = CLIENTS;
    cfg.loads = LOADS;
    cfg.interval = SimDuration::from_secs(INTERVAL_S);
    cfg.timeout = SimDuration::from_secs(TIMEOUT_S);
    cfg.extra_runtime = SimDuration::from_secs(20);
    if elastic {
        cfg.sc_elastic_pool = ELASTIC_ADDRS;
        cfg.sc_elastic_min = ELASTIC_MIN;
        cfg.sc_elastic_max = ELASTIC_MAX;
        // Longer than the breaker's detection time, so a blacklisted
        // instance is caught (and churned at a fresh IP) rather than
        // quietly idle-drained before anything notices.
        cfg.sc_elastic_idle = SimDuration::from_secs(30);
    } else {
        cfg.sc_remotes = static_pool;
    }

    let mut built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("elastic lab needs the GFW attached");
    let runtime = built.runtime();
    if verbose {
        println!(
            "arm={}: clients={CLIENTS}, loads={LOADS}, waves at {WAVES:?} s, runtime={}s",
            if elastic { "elastic" } else { "static" },
            runtime.as_secs_f64(),
        );
    }

    // The campaign: one blacklist verdict per wave. The static arm's
    // targets are knowable in advance (fixed IPs); the elastic arm's
    // are resolved at fire time from the live warm set.
    let mut plan = FaultPlan::new();
    if elastic {
        let handle = built.sc_elastic.clone().expect("elastic tier requested");
        for &t in WAVES {
            plan = plan.at(SimTime::from_secs(t), blacklist_oldest_warm(&gfw, &handle));
        }
    } else {
        for (i, &t) in WAVES.iter().enumerate() {
            let addr = built.sc_remote_addrs[i % static_pool];
            let gfw = gfw.clone();
            plan = plan.at(
                SimTime::from_secs(t),
                Fault::Callback {
                    label: "gfw_blacklist_static",
                    apply: Box::new(move |now| blacklist_now(&gfw, addr, now)),
                },
            );
        }
    }
    built.sim.install_fault_plan(plan);

    let elastic_handle = built.sc_elastic.clone();
    let outcome = built.finish();
    if verbose {
        print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
    }

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);
    let provisions = counter("scholarcloud.elastic_provisions");
    let retires = counter("scholarcloud.elastic_retires");
    let churns = counter("scholarcloud.elastic_churns");
    let invocations = counter("scholarcloud.elastic_invocations");
    let failovers = counter("scholarcloud.failovers");
    let breaker_transitions = counter("scholarcloud.breaker_transitions");
    // The static arm relays the same pages; bill its egress from the
    // relay counter so both arms price egress identically.
    let bytes_down = counter("scholarcloud.bytes_down");
    drop(guard);

    let cost_micro = match &elastic_handle {
        Some(h) => h.total_cost_micro(),
        None => ElasticConfig::default().static_cost_micro(static_pool, runtime, bytes_down),
    };

    let mut ok = 0usize;
    let mut failed = 0usize;
    for r in outcome.loads.iter().flatten() {
        if r.failed {
            failed += 1;
        } else {
            ok += 1;
        }
    }

    RunStats {
        ok,
        failed,
        cost_micro,
        provisions,
        retires,
        churns,
        invocations,
        failovers,
        breaker_transitions,
    }
}

/// Sweeps static pool size and the elastic tier under the same
/// campaign: the cost-vs-availability table for EXPERIMENTS.md.
fn sweep() {
    println!("--- elastic sweep: cost vs availability under 4 blacklist waves ---");
    println!(
        "{:>9} {:>5} {:>7} {:>13} {:>13} {:>15}",
        "arm", "ok", "failed", "availability", "cost (µ$)", "µ$/ok load"
    );
    for pool in [2usize, 4, 6] {
        let s = run_once(pool, false, false);
        println!(
            "{:>9} {:>5} {:>7} {:>12.1}% {:>13} {:>15.1}",
            format!("static-{pool}"),
            s.ok,
            s.failed,
            s.availability() * 100.0,
            s.cost_micro,
            s.cost_per_ok_micro(),
        );
    }
    let e = run_once(STATIC_POOL, true, false);
    println!(
        "{:>9} {:>5} {:>7} {:>12.1}% {:>13} {:>15.1}",
        "elastic",
        e.ok,
        e.failed,
        e.availability() * 100.0,
        e.cost_micro,
        e.cost_per_ok_micro(),
    );
}

fn main() {
    if std::env::args().any(|a| a == "--sweep") {
        sweep();
        return;
    }

    println!("--- elastic lab: serverless churn vs a static pool under blacklist waves ---");
    // Static control first, elastic treatment LAST: each run rewrites
    // SC_TRACE, and the check.sh gate must analyze the elastic arm.
    let control = run_once(STATIC_POOL, false, true);
    let e = run_once(STATIC_POOL, true, true);

    println!(
        "static-{STATIC_POOL}: {} ok / {} failed — availability {:.1}%, {} µ$ ({:.1} µ$/ok load)",
        control.ok,
        control.failed,
        control.availability() * 100.0,
        control.cost_micro,
        control.cost_per_ok_micro(),
    );
    println!(
        "elastic:  {} ok / {} failed — availability {:.1}%, {} µ$ ({:.1} µ$/ok load)",
        e.ok,
        e.failed,
        e.availability() * 100.0,
        e.cost_micro,
        e.cost_per_ok_micro(),
    );
    println!(
        "elastic lifecycle: {} provisions, {} retires, {} churns, {} invocations; \
         {} failovers, {} breaker transitions",
        e.provisions, e.retires, e.churns, e.invocations, e.failovers, e.breaker_transitions,
    );

    // 1. The campaign actually bites the static arm: with every VM
    //    dark after the last wave, loads fail.
    assert!(
        control.failed > 0,
        "static arm rode out the campaign unscathed — waves must darken the pool"
    );
    // 2. The censor's waves actually hit the elastic tier too (churn:
    //    breaker opened on a blacklisted instance, autoscaler retired
    //    and replaced it). Every wave found a warm target.
    assert!(
        e.churns >= WAVES.len() as u64,
        "expected ≥{} churns (one per wave), saw {}",
        WAVES.len(),
        e.churns
    );
    assert!(e.provisions > 0 && e.retires > 0, "churn must retire + re-provision");
    // 3. Elastic STRICTLY beats static on availability: replacements
    //    at fresh IPs keep serving while the static pool shrinks to
    //    nothing.
    assert!(
        e.availability() > control.availability(),
        "elastic availability {:.1}% must strictly beat static {:.1}%",
        e.availability() * 100.0,
        control.availability() * 100.0
    );
    // 4. …AND on cost per successful load: scale-to-demand plus churn
    //    beats paying for four always-on VMs that end up dark.
    assert!(
        e.cost_per_ok_micro() < control.cost_per_ok_micro(),
        "elastic {:.1} µ$/ok load must strictly beat static {:.1} µ$/ok load",
        e.cost_per_ok_micro(),
        control.cost_per_ok_micro()
    );
    // 5. The meters are real: the elastic bill itemizes invocations
    //    (one per relayed stream).
    assert!(e.invocations > 0, "elastic invocations must be metered");
    // 6. Determinism: the same seed replays the same churn, the same
    //    bill, the same outcome (the byte-identical trace pin lives in
    //    tests/elastic_props.rs).
    let replay = run_once(STATIC_POOL, true, false);
    assert_eq!(
        (e.ok, e.failed, e.cost_micro, e.churns, e.provisions, e.invocations),
        (
            replay.ok,
            replay.failed,
            replay.cost_micro,
            replay.churns,
            replay.provisions,
            replay.invocations
        ),
        "elastic arm must replay exactly"
    );

    println!("elastic lab: all cost + availability assertions passed");
}
