//! Chaos lab: the GFW hunts ScholarCloud's remote VMs one by one, and
//! the domestic proxy's resilience layer (failover pool, retries,
//! circuit breakers, health probes) keeps the service alive.
//!
//! The scenario runs the paper's testbed with **three** remote proxy
//! VMs and a timed fault plan:
//!
//! 1. `t=45s` — the primary remote is IP-blacklisted. Connects to it
//!    start timing out; the proxy retries, fails over to whichever
//!    surviving remote the pool favors (lowest probe RTT), and the
//!    breaker fences the dark VM.
//! 2. `t=75s` — a second remote is blacklisted.
//! 3. `t=105s` — the last remote goes dark. Graceful degradation:
//!    whitelisted requests are parked briefly, then answered `503`
//!    (fail-fast) instead of hanging browsers until their timeout.
//! 4. `t=125s` — the operator rotates IPs (modelled as the blacklist
//!    entries dropping). Health probes notice within seconds, breakers
//!    close, parked requests drain, and page loads succeed again.
//!
//! Everything is deterministic for the fixed seed — rerunning produces
//! a byte-identical trace (see `tests/obs_trace_determinism.rs`). With
//! `SC_TRACE=/tmp/chaos.jsonl` the run can be replayed through
//! `scholar-obs`, whose `--require-failover` / `--min-availability`
//! gates turn this scenario into the CI chaos check in
//! `scripts/check.sh`.
//!
//! Run with: `cargo run --example chaos_lab`

use sc_gfw::{blacklist_ip, unblacklist_ip};
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::faults::FaultPlan;
use sc_simnet::time::{SimDuration, SimTime};

fn main() {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 4242);
    cfg.clients = 4;
    cfg.loads = 16;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    cfg.sc_remotes = 3;

    let built = build_scenario(&cfg);
    let gfw = built.gfw.clone().expect("chaos lab needs the GFW attached");
    let remotes = built.sc_remote_addrs.clone();
    println!("--- chaos lab: GFW vs the ScholarCloud failover pool ---");
    println!(
        "remotes: {} ({}), clients={}, loads={}, runtime={}s",
        remotes.len(),
        remotes.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", "),
        cfg.clients,
        cfg.loads,
        built.runtime().as_secs_f64(),
    );

    // The fault plan: blacklist the remotes one by one, then heal.
    let mut plan = FaultPlan::new()
        .at(SimTime::from_secs(45), blacklist_ip(&gfw, remotes[0]))
        .at(SimTime::from_secs(75), blacklist_ip(&gfw, remotes[1]))
        .at(SimTime::from_secs(105), blacklist_ip(&gfw, remotes[2]));
    for &r in &remotes {
        plan = plan.at(SimTime::from_secs(125), unblacklist_ip(&gfw, r));
    }
    let mut built = built;
    built.sim.install_fault_plan(plan);

    let outcome = built.finish();
    print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
    print!(
        "{}",
        report::render_ops_dashboard(&[
            "web.plt_us",
            "web.loads_ok",
            "web.loads_failed",
            "web.proxy_errors",
            "scholarcloud.failovers",
            "scholarcloud.breaker_opens",
            "scholarcloud.breaker_closes",
            "scholarcloud.tunnel_failures",
        ])
    );

    let failovers =
        sc_obs::with_registry(|r| r.counter("scholarcloud.failovers")).unwrap_or(0);
    let breaker_transitions =
        sc_obs::with_registry(|r| r.counter("scholarcloud.breaker_transitions")).unwrap_or(0);
    let fail_fast = sc_obs::with_registry(|r| r.counter("scholarcloud.fail_fast")).unwrap_or(0);
    let probes = sc_obs::with_registry(|r| r.counter("scholarcloud.probes")).unwrap_or(0);
    drop(guard);

    // --- outcome accounting ---
    let heal = SimTime::from_secs(125);
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut saw_503 = false;
    let mut ok_after_heal = 0usize;
    for r in outcome.loads.iter().flatten() {
        if r.failed {
            failed += 1;
        } else {
            ok += 1;
            if r.started >= heal {
                ok_after_heal += 1;
            }
        }
        if r.proxy_status == Some(503) {
            saw_503 = true;
        }
    }
    let availability = ok as f64 / (ok + failed) as f64;
    println!(
        "loads: {ok} ok / {failed} failed — availability {:.1}%",
        availability * 100.0
    );
    println!(
        "failovers={failovers} breaker_transitions={breaker_transitions} \
         fail_fast_503s={fail_fast} probes={probes}"
    );
    println!("successful loads after the blacklist healed: {ok_after_heal}");

    // The resilience layer must have actually earned its keep:
    assert!(failovers >= 2, "expected ≥2 failovers, saw {failovers}");
    assert!(
        breaker_transitions >= 2,
        "expected breakers to open on dark remotes, saw {breaker_transitions} transitions"
    );
    assert!(saw_503, "the all-remotes-dark window must surface 503s to browsers");
    assert!(
        ok_after_heal >= cfg.clients,
        "service must recover after the blacklist heals (saw {ok_after_heal} post-heal successes)"
    );
    assert!(
        availability >= 0.70,
        "availability {availability:.3} fell below the chaos floor of 0.70"
    );
    println!("chaos lab: all resilience assertions passed");
}
