//! Cache lab: the domestic proxy's shared content cache under a
//! same-page crowd.
//!
//! Eight clients behind the same campus proxy load the scholar page over
//! plain HTTP (the gateway path — the one mode where the proxy sees HTTP
//! semantics), three rounds each, all starting together. The shared
//! cache (`sc-cache`) must:
//!
//! 1. **coalesce the cold surge** — when all eight browsers request the
//!    same resource at once and the cache is cold, exactly one upstream
//!    fetch per resource crosses the border; the other seven requests
//!    ride the in-flight fetch as waiters;
//! 2. **absorb repeat traffic** — across the run, upstream bytes drop by
//!    more than half compared to the cache-off control (same seed, zero
//!    byte budget);
//! 3. **revalidate cheaply** — the origin's `max-age` expires between
//!    rounds, so later rounds go upstream as conditional requests that
//!    come back `304 Not Modified` instead of refetching bodies;
//! 4. **stay flat** — clients that never triggered an upstream fetch
//!    load the page as fast as warm repeat visitors (shared-hit PLT sits
//!    in the warm band);
//! 5. **stay deterministic** — rerunning the same seed reproduces the
//!    cache's decision sequence exactly, down to the microsecond
//!    timestamps of its upstream fetches (the byte-identical trace pin
//!    lives in `tests/obs_trace_determinism.rs`).
//!
//! With `SC_TRACE=/tmp/cache.jsonl` the run leaves a trace that
//! `scholar-obs --min-cache-hit-rate 0.5` gates on in `scripts/check.sh`.
//!
//! Run with: `cargo run --example cache_lab`
//!
//! `cargo run --example cache_lab -- --sweep` instead sweeps the cache
//! byte budget and prints the hit-rate / eviction / upstream-bytes table
//! recorded in `EXPERIMENTS.md` (no assertions in sweep mode).

use sc_core::CacheStats;
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::time::SimDuration;

const CLIENTS: usize = 8;
const LOADS: usize = 3;
const INTERVAL_S: u64 = 30;
/// Origin `max-age`: shorter than the load interval, so every round
/// after the first finds the shared cache stale and must revalidate.
const ORIGIN_MAX_AGE_S: u64 = 20;
const CACHE_BYTES: usize = 256 * 1024;

/// Everything one run yields for the report and the assertions.
struct RunStats {
    ok: usize,
    failed: usize,
    /// Mean PLT of the non-leader clients' first loads (served from the
    /// shared cache or coalesced onto the leader's fetch), seconds.
    follower_first_mean_s: f64,
    /// Mean PLT of all subsequent (warm) loads, seconds.
    warm_mean_s: f64,
    /// p95 PLT over all successful loads, seconds.
    p95_plt_s: f64,
    /// Plain bytes the domestic proxy pulled from upstream remotes.
    upstream_bytes: u64,
    cache: CacheStats,
}

fn run_once(cache_bytes: usize, verbose: bool) -> RunStats {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 4242);
    cfg.clients = CLIENTS;
    cfg.loads = LOADS;
    cfg.interval = SimDuration::from_secs(INTERVAL_S);
    cfg.timeout = SimDuration::from_secs(25);
    // Serve the page over plain HTTP so the proxy terminates the
    // requests itself (gateway mode) instead of piping an opaque tunnel.
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(ORIGIN_MAX_AGE_S);
    cfg.sc_cache_bytes = Some(cache_bytes);

    let built = build_scenario(&cfg);
    let cache = built.sc_cache.clone().expect("ScholarCloud scenario has a cache handle");
    if verbose {
        println!("--- cache lab: {CLIENTS} clients, {LOADS} rounds, shared working set ---");
        println!(
            "cache budget={} KiB, origin max-age={}s, interval={}s, runtime={}s",
            cache_bytes / 1024,
            ORIGIN_MAX_AGE_S,
            INTERVAL_S,
            built.runtime().as_secs_f64(),
        );
    }

    let outcome = built.finish();
    if verbose {
        print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
        print!("{}", report::render_cache(&cache.stats()));
    }

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);
    let upstream_bytes = counter("scholarcloud.bytes_down");
    drop(guard);

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut follower_first = Vec::new();
    let mut warm = Vec::new();
    let mut all_plts = Vec::new();
    for (client, loads) in outcome.loads.iter().enumerate() {
        for r in loads {
            if r.failed {
                failed += 1;
                continue;
            }
            ok += 1;
            let Some(plt) = r.plt else { continue };
            let plt_s = plt.as_secs_f64();
            all_plts.push(plt_s);
            if r.first_time && client > 0 {
                follower_first.push(plt_s);
            } else if !r.first_time {
                warm.push(plt_s);
            }
        }
    }
    all_plts.sort_by(|a, b| a.total_cmp(b));
    let mean = |v: &[f64]| {
        if v.is_empty() { f64::NAN } else { v.iter().sum::<f64>() / v.len() as f64 }
    };
    let p95_plt_s = if all_plts.is_empty() {
        f64::NAN
    } else {
        let rank = ((0.95 * all_plts.len() as f64).ceil() as usize).clamp(1, all_plts.len());
        all_plts[rank - 1]
    };

    RunStats {
        ok,
        failed,
        follower_first_mean_s: mean(&follower_first),
        warm_mean_s: mean(&warm),
        p95_plt_s,
        upstream_bytes,
        cache: cache.stats(),
    }
}

/// Sweeps the byte budget and prints the cache-effectiveness table
/// (hit rate, evictions, upstream bytes vs budget) for EXPERIMENTS.md.
fn sweep() {
    println!("--- cache sweep: effectiveness vs byte budget ---");
    println!(
        "{:>10} {:>8} {:>10} {:>8} {:>10} {:>14} {:>10}",
        "budget", "hits", "coalesced", "reval", "evicted", "upstream (KB)", "p95 PLT"
    );
    for budget in [0usize, 8 * 1024, 16 * 1024, 32 * 1024, 256 * 1024] {
        let s = run_once(budget, false);
        let label = if budget == 0 { "off".to_string() } else { format!("{}K", budget / 1024) };
        println!(
            "{label:>10} {:>8} {:>10} {:>8} {:>10} {:>14.1} {:>8.2} s",
            s.cache.hits,
            s.cache.coalesced,
            s.cache.revalidated,
            s.cache.evicted,
            s.upstream_bytes as f64 / 1024.0,
            s.p95_plt_s,
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--sweep") {
        sweep();
        return;
    }

    // Control first: the same crowd with the cache disabled (zero byte
    // budget keeps the gateway path, so the only variable is the cache).
    let control = run_once(0, false);
    let s = run_once(CACHE_BYTES, true);

    println!(
        "loads: {} ok / {} failed (control: {} ok / {} failed)",
        s.ok, s.failed, control.ok, control.failed
    );
    println!(
        "upstream bytes: {:.1} KB with cache vs {:.1} KB control ({:.0}% saved)",
        s.upstream_bytes as f64 / 1024.0,
        control.upstream_bytes as f64 / 1024.0,
        (1.0 - s.upstream_bytes as f64 / control.upstream_bytes as f64) * 100.0,
    );
    println!(
        "PLT: follower first loads {:.2} s mean, warm loads {:.2} s mean, p95 {:.2} s",
        s.follower_first_mean_s, s.warm_mean_s, s.p95_plt_s
    );

    // 1. Nothing fails, with or without the cache.
    assert_eq!(s.failed, 0, "cache run had failed loads");
    assert_eq!(control.failed, 0, "control run had failed loads");

    // 2. The cold surge coalesces: exactly one upstream fetch for the
    //    hottest page in the first round's window, with the other seven
    //    clients riding it as waiters.
    let front_page_fetches =
        s.cache.fetches_before("scholar.google.com", "/", (INTERVAL_S / 2) * 1_000_000);
    assert_eq!(
        front_page_fetches, 1,
        "the surge on / must collapse to one upstream fetch (saw {front_page_fetches})"
    );
    assert!(
        s.cache.coalesced > 0,
        "concurrent identical requests must attach as waiters"
    );

    // 3. Upstream traffic halves (the paper's scarce resource is the
    //    censored trans-Pacific link, not the campus LAN).
    assert!(
        s.upstream_bytes * 2 <= control.upstream_bytes,
        "cache must cut upstream bytes by ≥50% ({} vs control {})",
        s.upstream_bytes,
        control.upstream_bytes
    );

    // 4. Later rounds revalidate instead of refetching: the origin's
    //    max-age expired between rounds, so the refresh is a cheap 304.
    assert!(
        s.cache.revalidated > 0,
        "stale rounds must refresh via 304 revalidation"
    );

    // 5. Shared hits sit in the warm band: a client whose first visit
    //    was served out of the shared cache loads the page about as fast
    //    as a warm repeat visitor (within 2× + transpacific slack).
    assert!(
        s.follower_first_mean_s <= s.warm_mean_s * 2.0 + 0.5,
        "shared-hit first loads ({:.2} s) fell out of the warm band ({:.2} s)",
        s.follower_first_mean_s,
        s.warm_mean_s
    );

    // 6. Determinism: the same seed replays the exact decision sequence,
    //    including the microsecond timestamps of every upstream fetch.
    let replay = run_once(CACHE_BYTES, false);
    assert_eq!(
        s.cache, replay.cache,
        "cache decisions must be byte-for-byte reproducible"
    );

    println!("cache lab: all shared-cache assertions passed");
}
