//! Fleet chaos: a domestic-proxy fleet member crashes mid flash-crowd,
//! and PAC-driven client failover plus consistent-hash cache peering
//! keep the legal avenue open.
//!
//! The paper's artifact is ONE domestic VM — a single point of failure
//! for every user behind the wall. This scenario deploys a fleet of
//! three members, gives every browser a *rotated* PAC fallback list
//! (`PROXY a; PROXY b; PROXY c`, round-tripped through the PAC
//! JavaScript parser), shards the content cache across members by
//! rendezvous hashing with a one-hop peering fetch on non-owner misses,
//! then kills member 1 with a [`Fault::NodeCrash`] right as a 12-client
//! flash crowd lands. The fleet must:
//!
//! 1. **fail over** — browsers detect the crashed member via connect
//!    timeout (a crashed node drops SYNs silently), dead-mark it with
//!    exponential re-probe backoff, and retry down their PAC list, so
//!    the only browser-visible failures are loads already in flight
//!    inside the crash blast window;
//! 2. **keep the cache warm** — the survivors re-shard the dead
//!    member's keyspace between themselves (rendezvous hashing moves
//!    only the dead member's keys), so the fleet-wide warm-hit rate
//!    stays within 10% of the no-crash control;
//! 3. **keep latency bounded** — p95 PLT of successful loads stays
//!    inside the 8 s budget through the crash + crowd;
//! 4. **rejoin** — after the [`Fault::NodeRestart`] the browsers'
//!    backoff expires, a re-probe connect succeeds, and the member
//!    takes traffic again;
//! 5. **stay deterministic** — rerunning the same seed reproduces every
//!    per-shard cache decision and failover count exactly (the
//!    byte-identical trace pin lives in `tests/obs_trace_determinism.rs`).
//!
//! With `SC_TRACE=/tmp/fleet.jsonl` the run leaves a trace (the last
//! run captured — the crash replay) that `scholar-obs
//! --min-fleet-availability 0.8` gates on in `scripts/check.sh`: the
//! crash's discovery and re-probe timeouts are in the quotient, so a
//! crash run sits near 86%, well above the 80% floor but far below a
//! healthy fleet's 100%.
//!
//! Run with: `cargo run --example fleet_chaos`
//!
//! `cargo run --example fleet_chaos -- --sweep` instead sweeps fleet
//! size × crash on/off and prints the survival table recorded in
//! `EXPERIMENTS.md` (no assertions in sweep mode).

use sc_core::CacheStats;
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::faults::{Fault, FaultPlan};
use sc_simnet::time::{SimDuration, SimTime};

const SEED: u64 = 9393;
const FLEET: usize = 3;
const NOMINAL_CLIENTS: usize = 6;
const LOADS: usize = 5;
const INTERVAL_S: u64 = 15;
const TIMEOUT_S: u64 = 10;
/// Origin `max-age`: shorter than the interval so every round re-walks
/// the proxy tier (the browser's private cache revalidates through it).
const ORIGIN_MAX_AGE_S: u64 = 10;
const FLASH_CLIENTS: usize = 12;
const FLASH_START_S: u64 = 30;
const FLASH_RAMP_S: u64 = 5;
/// Member 1 crashes right as the crowd lands…
const CRASH_S: u64 = 32;
/// …and comes back while nominal clients are still loading.
const RESTART_S: u64 = 55;
/// Loads that began inside `(CRASH − timeout, CRASH + window)` may fail
/// (they were in flight on the dying member, or raced its first
/// dead-mark). Anything outside is a browser-visible outage.
const BLAST_WINDOW_S: u64 = TIMEOUT_S + 2;

/// Everything one run yields for the report and the assertions.
struct RunStats {
    ok: usize,
    failed: usize,
    /// Failed loads that started OUTSIDE the crash blast window.
    failed_outside_blast: usize,
    p95_plt_s: f64,
    /// Per-shard cache stats, member order (one entry when fleet=1).
    shards: Vec<CacheStats>,
    /// Browser-side fleet counters.
    failovers: u64,
    dead_marks: u64,
    recoveries: u64,
    /// Proxy-side peering counters.
    peer_fetches: u64,
    peer_serves: u64,
    peer_timeouts: u64,
    fleet_sheds: u64,
}

impl RunStats {
    /// Fleet-wide warm-hit rate: requests answered from cache state
    /// (fresh hits, coalesced waiters, 304 refreshes) over all
    /// cacheable lookups, summed across shards.
    fn fleet_hit_rate(&self) -> f64 {
        let served: u64 = self.shards.iter().map(|s| s.served_from_cache()).sum();
        let misses: u64 = self.shards.iter().map(|s| s.misses).sum();
        if served + misses == 0 { 0.0 } else { served as f64 / (served + misses) as f64 }
    }
}

fn run_once(fleet: usize, crash: bool, verbose: bool) -> RunStats {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, SEED);
    cfg.clients = NOMINAL_CLIENTS;
    cfg.loads = LOADS;
    cfg.interval = SimDuration::from_secs(INTERVAL_S);
    cfg.timeout = SimDuration::from_secs(TIMEOUT_S);
    cfg.sc_fleet = fleet;
    // Gateway mode: the proxies terminate HTTP themselves, so the
    // sharded cache (and its peering hop) is on the request path.
    cfg.sc_http_page = true;
    cfg.origin_max_age = Some(ORIGIN_MAX_AGE_S);
    cfg.sc_cache_bytes = Some(256 * 1024);
    cfg.flash_clients = FLASH_CLIENTS;
    cfg.flash_loads = 2;
    cfg.flash_start = SimDuration::from_secs(FLASH_START_S);
    cfg.flash_ramp = SimDuration::from_secs(FLASH_RAMP_S);
    cfg.extra_runtime = SimDuration::from_secs(40);

    let mut built = build_scenario(&cfg);
    let shard_handles = if fleet > 1 {
        built.sc_fleet_caches.clone()
    } else {
        vec![built.sc_cache.clone().expect("ScholarCloud scenario has a cache")]
    };
    if verbose {
        println!("--- fleet chaos: crash one of {fleet} members mid flash-crowd ---");
        println!(
            "clients={NOMINAL_CLIENTS}+{FLASH_CLIENTS} flash at t={FLASH_START_S}s, \
             crash={} at t={CRASH_S}s, restart t={RESTART_S}s, runtime={}s",
            crash,
            built.runtime().as_secs_f64(),
        );
    }

    let gate = built.flash_gate.clone().expect("flash clients configured");
    let mut plan = FaultPlan::new().at(
        SimTime::from_secs(FLASH_START_S),
        Fault::FlashCrowd {
            clients: FLASH_CLIENTS as u32,
            ramp: SimDuration::from_secs(FLASH_RAMP_S),
            trigger: Box::new(move |_t| gate.set(true)),
        },
    );
    if crash {
        // Member 1 when the fleet has one, else the only member.
        let victim = built.sc_domestic_nodes[1.min(fleet - 1)];
        plan = plan
            .at(SimTime::from_secs(CRASH_S), Fault::NodeCrash(victim))
            .at(SimTime::from_secs(RESTART_S), Fault::NodeRestart(victim));
    }
    built.sim.install_fault_plan(plan);

    let outcome = built.finish();
    if verbose {
        print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
    }

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);
    let failovers = counter("web.failovers");
    let dead_marks = counter("web.proxy_dead_marks");
    let recoveries = counter("web.proxy_recoveries");
    let peer_fetches = counter("scholarcloud.peer_fetches");
    let peer_serves = counter("scholarcloud.peer_serves");
    let peer_timeouts = counter("scholarcloud.peer_timeouts");
    let fleet_sheds = counter("scholarcloud.fleet_shed");
    drop(guard);

    let blast_start = SimTime::from_secs(CRASH_S.saturating_sub(TIMEOUT_S));
    let blast_end = SimTime::from_secs(CRASH_S + BLAST_WINDOW_S);
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut failed_outside_blast = 0usize;
    let mut ok_plts_s: Vec<f64> = Vec::new();
    for r in outcome.loads.iter().flatten() {
        if r.failed {
            failed += 1;
            if r.started < blast_start || r.started >= blast_end {
                failed_outside_blast += 1;
            }
        } else {
            ok += 1;
            if let Some(plt) = r.plt {
                ok_plts_s.push(plt.as_secs_f64());
            }
        }
    }
    ok_plts_s.sort_by(|a, b| a.total_cmp(b));
    let p95_plt_s = if ok_plts_s.is_empty() {
        f64::NAN
    } else {
        let rank = ((0.95 * ok_plts_s.len() as f64).ceil() as usize).clamp(1, ok_plts_s.len());
        ok_plts_s[rank - 1]
    };

    RunStats {
        ok,
        failed,
        failed_outside_blast,
        p95_plt_s,
        shards: shard_handles.iter().map(|h| h.stats()).collect(),
        failovers,
        dead_marks,
        recoveries,
        peer_fetches,
        peer_serves,
        peer_timeouts,
        fleet_sheds,
    }
}

/// Sweeps fleet size × crash on/off and prints the survival table
/// (ok/failed, warm-hit rate, p95 PLT, failovers, peering traffic)
/// for EXPERIMENTS.md.
fn sweep() {
    println!("--- fleet sweep: crash survival vs fleet size ---");
    println!(
        "{:>6} {:>6} {:>5} {:>7} {:>9} {:>9} {:>10} {:>11} {:>9}",
        "fleet", "crash", "ok", "failed", "hit rate", "p95 PLT", "failovers", "peer fetch", "sheds"
    );
    for fleet in [1usize, 2, 4] {
        for crash in [false, true] {
            let s = run_once(fleet, crash, false);
            println!(
                "{fleet:>6} {:>6} {:>5} {:>7} {:>8.1}% {:>7.2} s {:>10} {:>11} {:>9}",
                if crash { "yes" } else { "no" },
                s.ok,
                s.failed,
                s.fleet_hit_rate() * 100.0,
                s.p95_plt_s,
                s.failovers,
                s.peer_fetches,
                s.fleet_sheds,
            );
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--sweep") {
        sweep();
        return;
    }

    // Control first: same fleet, same crowd, nobody crashes.
    let control = run_once(FLEET, false, false);
    let s = run_once(FLEET, true, true);

    println!(
        "loads: {} ok / {} failed (control: {} ok / {} failed)",
        s.ok, s.failed, control.ok, control.failed
    );
    println!(
        "fleet: {} dead-marks, {} failovers, {} recoveries at the browsers",
        s.dead_marks, s.failovers, s.recoveries
    );
    println!(
        "peering: {} fetches, {} serves, {} timeouts, {} fleet sheds",
        s.peer_fetches, s.peer_serves, s.peer_timeouts, s.fleet_sheds
    );
    println!(
        "warm-hit rate: {:.1}% with crash vs {:.1}% control; p95 PLT {:.2} s",
        s.fleet_hit_rate() * 100.0,
        control.fleet_hit_rate() * 100.0,
        s.p95_plt_s
    );

    // 1. The control fleet rides the crowd with zero failures, and its
    //    sharded cache actually peers (both sides of the hop observed).
    assert_eq!(control.failed, 0, "no-crash control had failed loads");
    assert!(
        control.peer_fetches > 0 && control.peer_serves > 0,
        "sharded fleet must exercise the peering hop (fetches={} serves={})",
        control.peer_fetches,
        control.peer_serves
    );
    // 2. The crash is detected the only way it can be (connect
    //    timeouts → dead-marks) and browsers fail over down their PAC
    //    lists.
    assert!(s.dead_marks > 0, "crash must be dead-marked by browsers");
    assert!(s.failovers > 0, "browsers must fail over to surviving members");
    // 3. No browser-visible outage outside the blast window: every
    //    failure was a load in flight on (or racing the first
    //    detection of) the dying member.
    assert_eq!(
        s.failed_outside_blast, 0,
        "loads outside the crash blast window must all succeed ({} did not)",
        s.failed_outside_blast
    );
    // 4. Survivors keep the fleet cache warm: hit rate within 10% of
    //    the no-crash control (rendezvous hashing moves only the dead
    //    member's keyspace).
    assert!(
        control.fleet_hit_rate() > 0.3,
        "control warm-hit rate {:.2} too low to make the comparison meaningful",
        control.fleet_hit_rate()
    );
    assert!(
        s.fleet_hit_rate() >= control.fleet_hit_rate() * 0.9,
        "crash run warm-hit rate {:.1}% fell more than 10% below control {:.1}%",
        s.fleet_hit_rate() * 100.0,
        control.fleet_hit_rate() * 100.0
    );
    // 5. Bounded latency for everything that succeeded.
    assert!(
        s.p95_plt_s <= 8.0,
        "p95 PLT {:.2}s exceeds the 8s budget under crash + crowd",
        s.p95_plt_s
    );
    // 6. The restarted member rejoins: some browser's re-probe backoff
    //    expired, its connect succeeded, and the dead-mark cleared.
    assert!(
        s.recoveries > 0,
        "restarted member must rejoin via a successful re-probe connect"
    );
    // 7. Determinism: the same seed replays every per-shard cache
    //    decision and fleet counter exactly.
    let replay = run_once(FLEET, true, false);
    assert_eq!(s.shards, replay.shards, "per-shard cache decisions must replay exactly");
    assert_eq!(
        (s.failovers, s.dead_marks, s.peer_fetches),
        (replay.failovers, replay.dead_marks, replay.peer_fetches),
        "fleet counters must replay exactly"
    );

    println!("fleet chaos: all fleet-survival assertions passed");
}
