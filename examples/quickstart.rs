//! Quickstart: build the censored world, deploy ScholarCloud, and load
//! Google Scholar through it — in under a minute of simulated time.
//!
//! Run with: `cargo run --example quickstart`

use sc_metrics::{Method, ScenarioConfig, run_scenario};

fn main() {
    // SC_TRACE=trace.jsonl streams every instrumented event to a file.
    let _obs = sc_metrics::trace::obs_from_env();
    // 1. Direct access: blocked by the GFW (DNS poisoning + IP blacklist).
    let mut direct = ScenarioConfig::paper(Method::Direct, 42);
    direct.loads = 1;
    direct.timeout = sc_simnet::time::SimDuration::from_secs(20);
    let blocked = run_scenario(&direct);
    println!(
        "Direct access to scholar.google.com: {} (DNS poisoned {} times)",
        if blocked.failure_rate() > 0.0 { "BLOCKED" } else { "ok" },
        blocked.gfw.dns_poisoned,
    );

    // 2. The same page through ScholarCloud's split proxy.
    let mut sc = ScenarioConfig::paper(Method::ScholarCloud, 42);
    sc.loads = 3;
    let outcome = run_scenario(&sc);
    let (first, subs) = outcome.plts();
    println!("Through ScholarCloud:");
    println!("  first-time page load: {:.2} s", first.first().copied().unwrap_or(f64::NAN));
    for (i, plt) in subs.iter().enumerate() {
        println!("  subsequent load {}:    {plt:.2} s", i + 1);
    }
    println!("  packet loss rate:     {:.3}%", outcome.plr * 100.0);
    println!("  GFW probes sent:      {}", outcome.gfw.probes_requested);
    println!("  servers confirmed:    {}", outcome.gfw.servers_confirmed);
    assert_eq!(outcome.failure_rate(), 0.0, "every load should succeed");
    println!("\nAll loads succeeded: censorship bypassed via a legal, whitelisted proxy.");
}
