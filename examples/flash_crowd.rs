//! Flash crowd: a 10× client surge hits an undersized domestic proxy,
//! and the overload-control layer (bounded admission, deadline-aware
//! shedding, per-client fairness, retry budget) keeps the service in a
//! brownout instead of a blackout.
//!
//! The scenario runs the paper's ScholarCloud testbed with the domestic
//! proxy deliberately undersized (4 concurrent tunnels, 4-deep pending
//! queue) and a timed [`Fault::FlashCrowd`]: at `t=40s` twenty-four extra
//! clients start arriving, spread over a 5-second ramp, each hammering
//! out page loads. The proxy must:
//!
//! 1. **shed fast** — excess requests get an immediate `503`/`429` with
//!    `Retry-After` instead of hanging until the browser timeout;
//! 2. **protect goodput** — admitted work still completes within its
//!    deadline budget (p95 PLT bounded), so the tunnel slots are never
//!    wasted on requests that will miss their deadline anyway;
//! 3. **bound retry amplification** — the global retry budget keeps
//!    brownout retries ≤ ~10% of admitted work, so retries cannot
//!    multiply the overload;
//! 4. **recover** — once the crowd passes, the nominal clients' loads
//!    succeed again with no residual queue.
//!
//! Everything is deterministic for the fixed seed — rerunning produces
//! a byte-identical trace (see `tests/obs_trace_determinism.rs`). With
//! `SC_TRACE=/tmp/flash.jsonl` the run replays through `scholar-obs`,
//! whose `--max-shed-rate` gate turns this scenario into the CI
//! overload check in `scripts/check.sh`.
//!
//! Run with: `cargo run --example flash_crowd`
//!
//! `cargo run --example flash_crowd -- --sweep` instead sweeps the
//! crowd size and prints the goodput / shed-rate / p95-PLT table
//! recorded in `EXPERIMENTS.md` (no assertions in sweep mode).

use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, build_scenario, report};
use sc_obs::WindowSpec;
use sc_simnet::faults::{Fault, FaultPlan};
use sc_simnet::time::{SimDuration, SimTime};

const FLASH_START_S: u64 = 40;
const FLASH_RAMP_S: u64 = 5;
const FLASH_CLIENTS: usize = 24;
const NOMINAL_CLIENTS: usize = 2;

/// Everything one run of the scenario yields for the report and the
/// assertions.
struct RunStats {
    admitted: u64,
    queued: u64,
    shed: u64,
    throttled: u64,
    retries: u64,
    retry_denied: u64,
    ok: usize,
    failed: usize,
    /// Failed loads that carried an explicit 503/429 (fail-fast, not a
    /// browser timeout).
    fast_refusals: usize,
    ok_after_spike: usize,
    /// Successful loads that started inside the spike window.
    spike_ok: usize,
    p95_plt_s: f64,
}

impl RunStats {
    fn shed_rate(&self) -> f64 {
        let decisions = self.admitted + self.shed + self.throttled;
        if decisions == 0 {
            return 0.0;
        }
        (self.shed + self.throttled) as f64 / decisions as f64
    }
}

fn run_once(flash_clients: usize, verbose: bool) -> RunStats {
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 7171);
    cfg.clients = NOMINAL_CLIENTS;
    cfg.loads = 10;
    cfg.interval = SimDuration::from_secs(10);
    cfg.timeout = SimDuration::from_secs(8);
    // Undersize the proxy so the surge actually overloads it.
    cfg.sc_max_tunnels = Some(4);
    cfg.sc_queue_len = Some(4);
    // The crowd: 10×+ the nominal client count, three loads each.
    cfg.flash_clients = flash_clients;
    cfg.flash_loads = 3;
    cfg.flash_start = SimDuration::from_secs(FLASH_START_S);
    cfg.flash_ramp = SimDuration::from_secs(FLASH_RAMP_S);
    cfg.extra_runtime = SimDuration::from_secs(40);

    let built = build_scenario(&cfg);
    if verbose {
        println!("--- flash crowd: 10× surge vs the undersized domestic proxy ---");
        println!(
            "nominal clients={}, crowd={} over {}s at t={}s, tunnels={}, queue={}, runtime={}s",
            cfg.clients,
            flash_clients,
            FLASH_RAMP_S,
            FLASH_START_S,
            cfg.sc_max_tunnels.unwrap(),
            cfg.sc_queue_len.unwrap(),
            built.runtime().as_secs_f64(),
        );
    }

    let mut built = built;
    if flash_clients > 0 {
        let gate = built.flash_gate.clone().expect("flash clients configured");
        let plan = FaultPlan::new().at(
            SimTime::from_secs(FLASH_START_S),
            Fault::FlashCrowd {
                clients: flash_clients as u32,
                ramp: SimDuration::from_secs(FLASH_RAMP_S),
                trigger: Box::new(move |_t| gate.set(true)),
            },
        );
        built.sim.install_fault_plan(plan);
    }

    let outcome = built.finish();
    if verbose {
        print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));
        print!(
            "{}",
            report::render_ops_dashboard(&[
                "web.plt_us",
                "web.loads_ok",
                "web.loads_failed",
                "web.throttled",
                "scholarcloud.admitted",
                "scholarcloud.shed",
                "scholarcloud.throttled",
                "scholarcloud.queue_depth",
            ])
        );
    }

    let counter = |name| sc_obs::with_registry(|r| r.counter(name)).unwrap_or(0);
    let admitted = counter("scholarcloud.admitted");
    let queued = counter("scholarcloud.queued");
    let shed = counter("scholarcloud.shed");
    let throttled = counter("scholarcloud.throttled");
    let retries = counter("scholarcloud.retries");
    let retry_denied = counter("scholarcloud.retry_denied");
    drop(guard);

    let spike_start = SimTime::from_secs(FLASH_START_S);
    let spike_end = SimTime::from_secs(FLASH_START_S + FLASH_RAMP_S + 20);
    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut fast_refusals = 0usize;
    let mut ok_after_spike = 0usize;
    let mut spike_ok = 0usize;
    let mut ok_plts_s: Vec<f64> = Vec::new();
    for r in outcome.loads.iter().flatten() {
        if r.failed {
            failed += 1;
            if matches!(r.proxy_status, Some(429 | 503)) {
                fast_refusals += 1;
            }
        } else {
            ok += 1;
            if let Some(plt) = r.plt {
                ok_plts_s.push(plt.as_secs_f64());
            }
            if r.started >= spike_start && r.started < spike_end {
                spike_ok += 1;
            }
            if r.started >= spike_end {
                ok_after_spike += 1;
            }
        }
    }
    ok_plts_s.sort_by(|a, b| a.total_cmp(b));
    let p95_plt_s = if ok_plts_s.is_empty() {
        f64::NAN
    } else {
        let rank = ((0.95 * ok_plts_s.len() as f64).ceil() as usize).clamp(1, ok_plts_s.len());
        ok_plts_s[rank - 1]
    };

    RunStats {
        admitted,
        queued,
        shed,
        throttled,
        retries,
        retry_denied,
        ok,
        failed,
        fast_refusals,
        ok_after_spike,
        spike_ok,
        p95_plt_s,
    }
}

/// Sweeps the crowd size and prints the overload-response table
/// (goodput, shed rate, p95 PLT vs load multiplier) for EXPERIMENTS.md.
fn sweep() {
    println!("--- flash crowd sweep: overload response vs load multiplier ---");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "crowd", "load mult", "admitted", "shed", "shed rate", "spike ok/s", "p95 PLT"
    );
    let spike_s = (FLASH_RAMP_S + 20) as f64;
    for flash in [0usize, 6, 12, 24, 48] {
        let s = run_once(flash, false);
        let mult = (NOMINAL_CLIENTS + flash) as f64 / NOMINAL_CLIENTS as f64;
        println!(
            "{flash:>6} {mult:>9.1}× {:>10} {:>10} {:>9.1}% {:>12.2} {:>8.2} s",
            s.admitted,
            s.shed + s.throttled,
            s.shed_rate() * 100.0,
            s.spike_ok as f64 / spike_s,
            s.p95_plt_s,
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--sweep") {
        sweep();
        return;
    }
    let s = run_once(FLASH_CLIENTS, true);

    let decisions = s.admitted + s.shed + s.throttled;
    println!(
        "admission: admitted={} queued={} shed={} throttled={} ({decisions} decisions, \
         shed rate {:.1}%)",
        s.admitted,
        s.queued,
        s.shed,
        s.throttled,
        s.shed_rate() * 100.0
    );
    println!(
        "retries: {} granted, {} denied by the retry budget",
        s.retries, s.retry_denied
    );
    println!(
        "loads: {} ok / {} failed ({} failed with a fast 503/429)",
        s.ok, s.failed, s.fast_refusals
    );
    println!("p95 PLT of successful loads: {:.2} s (budget 8 s)", s.p95_plt_s);
    println!("goodput during the spike window: {} successful loads", s.spike_ok);
    println!("successful loads after the crowd passed: {}", s.ok_after_spike);

    // 1. The surge must actually overload the proxy, and the overload
    //    must surface as fast explicit refusals, not browser timeouts.
    assert!(
        s.shed + s.throttled > 0,
        "the 10× surge must trigger shedding (shed={} throttled={})",
        s.shed,
        s.throttled
    );
    assert!(
        s.fast_refusals > 0,
        "shed requests must fail fast with 503/429 at the browser, not time out"
    );
    // 2. Admitted work completes within the load's deadline budget: the
    //    proxy never spends tunnel slots on requests that blow through
    //    their deadline.
    assert!(
        s.p95_plt_s <= 8.0,
        "admitted p95 PLT {:.2}s exceeds the 8s budget",
        s.p95_plt_s
    );
    // 3. Retry amplification is bounded by the global retry budget:
    //    ≤ 10% of admitted requests plus the initial burst allowance.
    let retry_cap = s.admitted / 10 + 8;
    assert!(
        s.retries <= retry_cap,
        "retries {} exceed the budget cap {retry_cap} (admitted={})",
        s.retries,
        s.admitted
    );
    // 4. Goodput holds: admitted loads keep completing through the
    //    spike — shedding protects the work in flight. The floor is 90%
    //    of what the 4-tunnel proxy sustains at saturation in this
    //    window (50 loads measured; see EXPERIMENTS.md).
    assert!(
        s.spike_ok >= 45,
        "goodput fell >10% below saturation capacity (only {} successful spike loads)",
        s.spike_ok
    );
    // 5. Full recovery: the nominal clients' post-spike loads succeed.
    assert!(
        s.ok_after_spike >= NOMINAL_CLIENTS,
        "service must recover after the crowd passes (saw {} post-spike successes)",
        s.ok_after_spike
    );
    println!("flash crowd: all overload-control assertions passed");
}
