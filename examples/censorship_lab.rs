//! A censorship laboratory: demonstrates each GFW technique in isolation
//! against the simulated network — DNS poisoning, IP blocking, keyword
//! resets, SNI resets, entropy-based suspicion, and active probing.
//!
//! Run with: `cargo run --example censorship_lab`

use sc_metrics::{Method, ScenarioConfig, run_scenario};

fn main() {
    // SC_TRACE=trace.jsonl streams every instrumented event to a file.
    let _obs = sc_metrics::trace::obs_from_env();
    println!("=== GFW techniques against each access method ===\n");

    // Direct: DNS poisoning + IP blocking.
    let mut cfg = ScenarioConfig::paper(Method::Direct, 7);
    cfg.loads = 1;
    cfg.timeout = sc_simnet::time::SimDuration::from_secs(20);
    let direct = run_scenario(&cfg);
    println!(
        "Direct:      blocked={} dns_poisoned={} ip_blocked={}",
        direct.failure_rate() > 0.0,
        direct.gfw.dns_poisoned,
        direct.gfw.ip_blocked,
    );
    print!("{}", sc_metrics::report::render_scenario(Method::Direct, &direct));

    // Shadowsocks: entropy suspicion → active probe → confirmation → loss.
    let mut cfg = ScenarioConfig::paper(Method::Shadowsocks, 7);
    cfg.loads = 4;
    let ss = run_scenario(&cfg);
    println!(
        "Shadowsocks: probes={} confirmed={} throttled_packets={} plr={:.2}%",
        ss.gfw.probes_requested,
        ss.gfw.servers_confirmed,
        ss.gfw.throttled,
        ss.plr * 100.0,
    );

    // Tor/meek: behavioral long-poll fingerprint → heavy throttling.
    let mut cfg = ScenarioConfig::paper(Method::Tor, 7);
    cfg.loads = 4;
    let tor = run_scenario(&cfg);
    println!(
        "Tor (meek):  throttled_packets={} plr={:.2}%",
        tor.gfw.throttled,
        tor.plr * 100.0,
    );

    // ScholarCloud: cover + blinding + decoy → unscathed.
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 7);
    cfg.loads = 4;
    let sc = run_scenario(&cfg);
    println!(
        "ScholarCloud: probes={} confirmed={} embedded_sni_resets={} plr={:.2}%",
        sc.gfw.probes_requested,
        sc.gfw.servers_confirmed,
        sc.gfw.embedded_sni_resets,
        sc.plr * 100.0,
    );

    // Ablation: turn blinding off and the embedded-SNI scanner bites.
    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 7);
    cfg.loads = 4;
    cfg.sc_scheme = sc_crypto::BlindingScheme::Identity;
    let naked = run_scenario(&cfg);
    println!(
        "  …without blinding: embedded_sni_resets={} failure_rate={:.0}%",
        naked.gfw.embedded_sni_resets,
        naked.failure_rate() * 100.0,
    );
    print!("{}", sc_metrics::report::render_scenario(Method::ScholarCloud, &naked));
    // Counters/histograms collected this run (empty without SC_TRACE
    // unless another collector is installed).
    print!("{}", sc_metrics::report::render_obs_summary());
}
