//! The operational side of ScholarCloud: PAC file generation, ICP
//! registration with the agencies, whitelist amendment on demand, scheme
//! rotation, and the deployment cost model (§2–§3 of the paper).
//!
//! Run with: `cargo run --example scholarcloud_ops`

use sc_core::{Deployment, ScConfig};
use sc_regulation::{EnforcementStatus, Regulator, scholarcloud_dossier};
use sc_simnet::addr::Addr;
use sc_simnet::time::SimTime;

fn main() {
    // The PAC file users configure in their browser.
    let cfg = ScConfig::new(Addr::new(10, 1, 0, 1), Addr::new(99, 0, 0, 40));
    println!("--- PAC file served to users ---\n{}", cfg.pac_file().to_javascript());

    // ICP registration: file the dossier, wait out manual review.
    let mut regulator = Regulator::new();
    let t0 = SimTime::ZERO;
    regulator.submit(scholarcloud_dossier(), t0);
    regulator.tick(t0 + sc_regulation::icp::REVIEW_DELAY);
    println!(
        "Registered: {} → {}",
        regulator.is_registered("scholar.thucloud.example"),
        regulator.icp_number("scholar.thucloud.example").unwrap_or("-"),
    );

    // An MPS/MSS report against a registered, whitelist-scoped service.
    let verdict = regulator.report_service("scholar.thucloud.example", t0 + sc_regulation::icp::REVIEW_DELAY);
    println!("Agency review of the registered service: {verdict:?}");
    assert_eq!(verdict, EnforcementStatus::Clear);

    // The agencies demand a whitelist amendment; the operator complies.
    let ok = regulator.amend_whitelist(
        "scholar.thucloud.example",
        vec!["scholar.google.com".into()],
    );
    println!("Whitelist amended on demand: {ok}");

    // Scheme rotation (censor-adaptation agility).
    let before = cfg.scheme.get();
    let after = cfg.scheme.rotate();
    println!("Blinding scheme rotated: {before:?} → {after:?}");

    // Cost model.
    let d = Deployment::paper();
    println!(
        "Deployment: {} VMs, {:.2} USD/day total, {:.4} USD per active user per day",
        d.vms,
        d.daily_cost_usd(),
        d.cost_per_active_user_usd(),
    );
}
