//! The operational side of ScholarCloud: first the service paperwork
//! (PAC file, ICP registration, whitelist amendment, scheme rotation,
//! cost model — §2–§3 of the paper), then the part an operator lives
//! in day to day: the **dashboard**.
//!
//! The dashboard demo runs a load ramp against an undersized
//! ScholarCloud VM: clients come online staggered, the proxy's access
//! link saturates mid-ramp, page-load times blow through the PLT SLO,
//! burn-rate alerts fire, and — as the ramp completes and the early
//! clients settle into their think-time cadence — the service recovers
//! and the alerts resolve. All of it is deterministic for the fixed
//! seed, and with `SC_TRACE=/tmp/ops.jsonl` the whole incident (alerts
//! included) lands in a JSONL trace that `scholar-obs` can replay.
//!
//! Run with: `cargo run --example scholarcloud_ops`

use sc_core::{Deployment, ScConfig};
use sc_metrics::scenario::default_slos;
use sc_metrics::{Method, ScenarioConfig, report, run_scenario};
use sc_obs::WindowSpec;
use sc_regulation::{EnforcementStatus, Regulator, scholarcloud_dossier};
use sc_simnet::addr::Addr;
use sc_simnet::time::{SimDuration, SimTime};

fn main() {
    // --- 1. Service paperwork (the legal avenue) ---
    let cfg = ScConfig::new(Addr::new(10, 1, 0, 1), Addr::new(99, 0, 0, 40));
    println!("--- PAC file served to users ---\n{}", cfg.pac_file().to_javascript());

    let mut regulator = Regulator::new();
    let t0 = SimTime::ZERO;
    regulator.submit(scholarcloud_dossier(), t0);
    regulator.tick(t0 + sc_regulation::icp::REVIEW_DELAY);
    println!(
        "Registered: {} → {}",
        regulator.is_registered("scholar.thucloud.example"),
        regulator.icp_number("scholar.thucloud.example").unwrap_or("-"),
    );
    let verdict =
        regulator.report_service("scholar.thucloud.example", t0 + sc_regulation::icp::REVIEW_DELAY);
    println!("Agency review of the registered service: {verdict:?}");
    assert_eq!(verdict, EnforcementStatus::Clear);
    let ok = regulator
        .amend_whitelist("scholar.thucloud.example", vec!["scholar.google.com".into()]);
    println!("Whitelist amended on demand: {ok}");
    let before = cfg.scheme.get();
    let after = cfg.scheme.rotate();
    println!("Blinding scheme rotated: {before:?} → {after:?}");
    let d = Deployment::paper();
    println!(
        "Deployment: {} VMs, {:.2} USD/day total, {:.4} USD per active user per day",
        d.vms,
        d.daily_cost_usd(),
        d.cost_per_active_user_usd(),
    );

    // --- 2. Operator dashboard: a capacity incident, observed live ---
    //
    // 10-second windows, the default SLOs ("PLT p95 ≤ 6 s" and
    // "availability ≥ 99%"), alerts flowing through the normal sink
    // path (so they show up in SC_TRACE too).
    let guard = sc_metrics::trace::ops_obs(WindowSpec::seconds(10), default_slos());

    let mut cfg = ScenarioConfig::paper(Method::ScholarCloud, 1717);
    cfg.clients = 24;
    cfg.loads = 30;
    cfg.interval = SimDuration::from_secs(5);
    cfg.timeout = SimDuration::from_secs(20);
    // One new client every 5 s: a ~2-minute ramp.
    cfg.ramp_stagger = SimDuration::from_secs(5);
    // The incident: the remote proxy VM's access link is provisioned at
    // a fraction of the calibrated 20 Mbit/s (think: noisy neighbour,
    // mis-sized instance). Under the full ramp it saturates.
    cfg.server_bandwidth_override = Some(480_000);

    println!("\n--- load ramp against an undersized ScholarCloud VM ---");
    println!(
        "clients={} stagger={}s interval={}s loads={} server={}kbit/s",
        cfg.clients,
        cfg.ramp_stagger.as_secs_f64(),
        cfg.interval.as_secs_f64(),
        cfg.loads,
        cfg.server_bandwidth_override.unwrap() / 1000,
    );
    let outcome = run_scenario(&cfg);
    print!("{}", report::render_scenario(Method::ScholarCloud, &outcome));

    print!(
        "{}",
        report::render_ops_dashboard(&["web.plt_us", "web.loads_ok", "web.loads_failed"])
    );

    let fired = sc_obs::with_slo_engine(|e| e.total_fired()).unwrap_or(0);
    let firing_now = sc_obs::with_slo_engine(|e| {
        e.statuses().iter().filter(|s| s.firing).count()
    })
    .unwrap_or(0);
    // Exemplars: each fired alert carries the trace ids of the worst
    // requests inside its burn window — the bridge from "the p95 is bad"
    // to "here is one concrete request to blame".
    let exemplars: Vec<(String, Vec<u64>)> = sc_obs::with_slo_engine(|e| {
        e.specs()
            .iter()
            .zip(e.statuses())
            .filter(|(_, st)| st.fired > 0)
            .map(|(spec, st)| (spec.name.clone(), st.last_exemplars.clone()))
            .collect()
    })
    .unwrap_or_default();
    drop(guard);

    println!("alerts fired during the incident: {fired} (still firing at end: {firing_now})");
    assert!(fired >= 1, "the capacity incident must fire at least one SLO alert");
    let plt_exemplars = exemplars
        .iter()
        .find(|(name, _)| name == "plt-p95")
        .map(|(_, ids)| ids.as_slice())
        .unwrap_or(&[]);
    assert!(
        !plt_exemplars.is_empty(),
        "the fired plt-p95 alert must carry at least one exemplar trace id"
    );
    for (name, ids) in &exemplars {
        let ids: Vec<String> = ids.iter().map(|t| format!("{t:016x}")).collect();
        println!("  {name} exemplars: {}", ids.join(" "));
    }

    // --- 3. Drill-down: from alert exemplar to per-request waterfall ---
    //
    // With SC_TRACE set, replay the captured trace through the offline
    // analyzer and render the stitched cross-tier waterfall for the worst
    // exemplar — exactly what `scholar-obs --trace <id>` prints.
    if let Ok(path) = std::env::var("SC_TRACE") {
        if !path.is_empty() {
            let text = std::fs::read_to_string(&path).expect("read SC_TRACE capture");
            let events = sc_obs::analyze::parse_trace(&text).expect("parse SC_TRACE capture");
            let analysis = sc_obs::analyze::analyze(&events, 10_000_000);
            let coverage = analysis.attribution_coverage().expect("completed loads");
            println!(
                "\n--- drill-down: {} stitched traces, attribution coverage {:.1}% ---",
                analysis.trees.len(),
                coverage * 100.0
            );
            assert!(coverage >= 0.95, "attribution coverage {coverage:.3} below 95%");
            let worst = plt_exemplars
                .iter()
                .filter_map(|id| analysis.tree(*id))
                .max_by_key(|t| t.plt_us)
                .expect("exemplar ids must resolve to stitched trees");
            print!("{}", sc_obs::analyze::render_waterfall(worst));
            // The waterfall's per-tier exclusive times are an exact
            // partition of the PLT (the 1% acceptance bound is met with
            // zero slack by construction).
            let tier_sum: u64 = worst.tier_us.values().sum();
            let plt = worst.plt_us.max(1);
            let err = (tier_sum as f64 - plt as f64).abs() / plt as f64;
            assert!(err <= 0.01, "tier blame off by {:.2}% of PLT", err * 100.0);
        }
    }
}
