#!/usr/bin/env sh
# Regenerates figures_output.txt (gitignored): every paper figure plus
# the ablations, rendered as text. Pass a figure name to narrow it
# (fig3|fig5|fig6|fig7|ablations|all; default all).
set -eu
cd "$(dirname "$0")/.."
what="${1:-all}"
out="figures_output.txt"
cargo run --release --offline --example paper_figures "$what" 2>&1 | tee "$out"
echo "wrote $out"
