#!/usr/bin/env sh
# Tier-1 gate: build and test the reproduction, fully offline.
# Everything external is vendored under vendor/, so no network is needed.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline

# Observability smoke gate: capture a real SC_TRACE from a seeded run,
# then make scholar-obs analyze it. scholar-obs exits non-zero on parse
# errors (2) or an empty analysis (3), failing the gate.
trace="${TMPDIR:-/tmp}/sc_check_trace.jsonl"
SC_TRACE="$trace" cargo run --release --offline --example quickstart >/dev/null
cargo run --release --offline -p sc-obs --bin scholar-obs -- "$trace" --window 30 >/dev/null
rm -f "$trace"
echo "scholar-obs smoke gate: ok"

# Chaos smoke gate: run the fault-injection scenario (GFW blacklists the
# remote pool one VM at a time, then heals) and assert through the trace
# that the resilience layer reacted — at least one failover happened and
# availability stayed above the chaos floor. scholar-obs exits 4 when a
# gate fails.
chaos_trace="${TMPDIR:-/tmp}/sc_check_chaos.jsonl"
SC_TRACE="$chaos_trace" cargo run --release --offline --example chaos_lab >/dev/null
cargo run --release --offline -p sc-obs --bin scholar-obs -- "$chaos_trace" \
    --require-failover --min-availability 0.70 >/dev/null
rm -f "$chaos_trace"
echo "chaos smoke gate: ok"

# Overload smoke gate: run the flash-crowd scenario (a 10x client surge
# against an undersized domestic proxy) and assert through the trace
# that the admission layer shed load within bounds — the example itself
# asserts fast 503/429s, bounded p95 PLT, the retry budget, and
# recovery; scholar-obs then gates the shed rate (brownout, never a
# blackout).
flash_trace="${TMPDIR:-/tmp}/sc_check_flash.jsonl"
SC_TRACE="$flash_trace" cargo run --release --offline --example flash_crowd >/dev/null
cargo run --release --offline -p sc-obs --bin scholar-obs -- "$flash_trace" \
    --max-shed-rate 0.70 >/dev/null
rm -f "$flash_trace"
echo "overload smoke gate: ok"

# Cache smoke gate: run the shared-cache scenario (a same-page crowd on
# the plain-HTTP gateway path) and assert through the trace that the
# domestic proxy's content cache absorbed most of it — the example
# itself asserts singleflight coalescing, the ≥50% upstream-byte cut vs
# the cache-off control, 304 revalidation, and determinism; scholar-obs
# then gates the hit rate.
cache_trace="${TMPDIR:-/tmp}/sc_check_cache.jsonl"
SC_TRACE="$cache_trace" cargo run --release --offline --example cache_lab >/dev/null
cargo run --release --offline -p sc-obs --bin scholar-obs -- "$cache_trace" \
    --min-cache-hit-rate 0.50 >/dev/null
rm -f "$cache_trace"
echo "cache smoke gate: ok"
