#!/usr/bin/env sh
# Tier-1 gate: build and test the reproduction, fully offline.
# Everything external is vendored under vendor/, so no network is needed.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline
