#!/usr/bin/env sh
# Tier-1 gate: build and test the reproduction, fully offline.
# Everything external is vendored under vendor/, so no network is needed.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline
cargo test -q --offline

# run_gate <name> <example> [scholar-obs gate flags...]
#
# One trace-capture gate: run the example with SC_TRACE pointed at a
# temp file, then make scholar-obs analyze it with the given gate
# flags. scholar-obs exits non-zero on parse errors (2), an empty
# analysis (3), or a failed gate (4), failing the whole script via
# `set -e`.
run_gate() {
    _name="$1"; _example="$2"; shift 2
    _trace="${TMPDIR:-/tmp}/sc_check_${_name}.jsonl"
    SC_TRACE="$_trace" cargo run --release --offline --example "$_example" >/dev/null
    cargo run --release --offline -p sc-obs --bin scholar-obs -- "$_trace" "$@" >/dev/null
    rm -f "$_trace"
    echo "$_name smoke gate: ok"
}

# Observability: a seeded quickstart run must produce an analyzable trace.
run_gate quickstart quickstart --window 30

# Every ScholarCloud-method gate below also demands ≥95% attribution
# coverage: completed page loads must stitch into cross-tier trace
# trees (trace ids propagate in-band, so coverage is structural — a
# drop below 100% means a hop stopped forwarding its TraceCtx).

# Chaos: the fault-injection scenario (GFW blacklists the remote pool
# one VM at a time, then heals) must show the resilience layer reacting
# — at least one failover, availability above the chaos floor.
run_gate chaos chaos_lab --require-failover --min-availability 0.70 \
    --min-attribution-coverage 95

# Overload: the flash-crowd scenario (a 10x client surge against an
# undersized domestic proxy) must shed load within bounds — the example
# itself asserts fast 503/429s, bounded p95 PLT, the retry budget, and
# recovery; scholar-obs then gates the shed rate (brownout, never a
# blackout).
run_gate overload flash_crowd --max-shed-rate 0.70 \
    --min-attribution-coverage 95

# Cache: the shared-cache scenario (a same-page crowd on the plain-HTTP
# gateway path) must be absorbed by the domestic proxy's content cache —
# the example itself asserts singleflight coalescing, the ≥50%
# upstream-byte cut vs the cache-off control, 304 revalidation, and
# determinism; scholar-obs then gates the hit rate.
run_gate cache cache_lab --min-cache-hit-rate 0.50 \
    --min-attribution-coverage 95

# Fleet: the fleet-chaos scenario (a 3-member domestic-proxy fleet, one
# member crashed mid flash-crowd) must survive via PAC failover and
# cache peering — the example itself asserts dead-marking, failover,
# warm-hit retention, the p95 budget, rejoin, and determinism;
# scholar-obs then gates sustained fleet availability (the crash may
# cost the connects that discover it — roughly one timed-out connect
# per client per crash run — not ongoing ones).
run_gate fleet fleet_chaos --min-fleet-availability 0.80 \
    --min-attribution-coverage 95

# Elastic: the serverless-remote-tier scenario (a 4-wave GFW
# blacklisting campaign against the autoscaled pool) must stay cheap
# AND available — the example itself asserts the elastic arm strictly
# beats a static 4-VM pool on both metrics, per-wave churn, and
# determinism; scholar-obs then gates the elastic arm's trace (the
# last run's — each run overwrites SC_TRACE) on availability and the
# metered cost per successful load (measured ≈ 0.00012 USD/load;
# 0.0002 allows drift without letting it approach static-pool cost).
run_gate elastic elastic_lab --min-availability 0.95 \
    --max-cost-per-load 0.0002 --min-attribution-coverage 95

# Arms race: the adaptive-censor scenario (a reactive GFW that learns
# cover signatures and actively probes, against detection-driven scheme
# rotation) — the example itself asserts the rotation-off control
# collapses below 60% while the defended arm holds ≥90%, that no
# active probe is ever confirmed, and determinism; scholar-obs then
# gates the defended arm's trace (the last run's): availability over
# loads finishing after the first probing campaign, and a 0% probe
# detection rate (the replay cache must deflect every probe).
run_gate arms_race arms_race_lab --min-availability-under-campaign 0.90 \
    --max-detection-rate 0.0 --min-attribution-coverage 95

# Ops: the capacity-incident scenario must fire the PLT SLO with
# exemplar trace ids attached (the example itself additionally renders
# the worst exemplar's waterfall and asserts the per-tier exclusive
# times partition the PLT).
run_gate ops scholarcloud_ops --window 10 --min-attribution-coverage 95 \
    --require-exemplars

# Performance-harness smoke gate: one fast iteration of the scholar-bench
# suite must produce a schema-valid BENCH file that passes its own sanity
# bounds (events > 0, positive wall/sim time, subsystem attribution
# present). Deliberately NO timing assertions and NO --baseline compare
# here — CI machines are too noisy; the committed BENCH_seed.json
# trajectory is gated by hand with
#   cargo run --release -p sc-bench --bin scholar-bench -- \
#     --baseline BENCH_seed.json --max-regress 15
bench_out="${TMPDIR:-/tmp}/sc_check_bench.json"
cargo run --release --offline -p sc-bench --bin scholar-bench -- \
    --quiet --iterations 1 --out "$bench_out" >/dev/null
rm -f "$bench_out"
echo "scholar-bench smoke gate: ok"
